//! The CCAM simulator: configurations `⟨S, P⟩` and the transition relation
//! of Figure 3 (plus the documented extensions).
//!
//! Code is executed from flat [`CodeSeg`] segments: a control-stack frame
//! is a `(segment, block, pc)` triple, and the dispatch loop walks the
//! block's contiguous instruction range directly — one borrow of the
//! segment per frame activation, **zero reference-count traffic per
//! instruction**. Instructions that transfer control or append frozen
//! blocks to a segment (application, branching, `call`, the merge family)
//! leave the fast path; everything else executes inline over the borrowed
//! slice. One executed instruction is one **reduction step** — the unit
//! reported in the paper's Table 1.
//!
//! # Backend layer
//!
//! Each opcode's semantics is a standalone step function over a shared
//! [`state::MachineState`], grouped by family: [`core`] (CAM ops,
//! constants, staging, primitives), [`env`] (environment projections and
//! `env_cons`), [`fused`] (straight-line superinstructions), and
//! [`transfer`] (control transfers over the whole machine). The
//! interpreter is a table-driven dispatcher over those functions
//! ([`DISPATCH`], indexed by [`Instr::opcode`]); the thread-coded native
//! tier ([`crate::native`], enabled by [`Machine::set_native`]) lowers a
//! block once into pre-decoded closures over the *same* step functions,
//! so the two tiers cannot drift semantically and step counts, fuel, and
//! traces are identical by construction.

pub(crate) mod core;
pub(crate) mod env;
pub(crate) mod fused;
pub(crate) mod state;
pub(crate) mod transfer;

#[cfg(test)]
mod tests;

use crate::instr::{Instr, OPCODE_COUNT, OPCODE_NAMES};
use crate::native;
use crate::seg::{BlockId, CodeRef, CodeSeg, TierProbe};
use crate::value::{Arena, Value};
use state::MachineState;
use std::fmt;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// An instruction needed more stack entries than were present.
    StackUnderflow {
        /// The instruction's mnemonic.
        instr: &'static str,
    },
    /// The top of the stack had the wrong shape for the instruction.
    TypeMismatch {
        /// The instruction's mnemonic.
        instr: &'static str,
        /// What the instruction needed.
        expected: &'static str,
        /// A rendering of what it found.
        found: String,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// A `fail` instruction ran (inexhaustive match).
    Fail(String),
    /// `switch` found no matching arm and no default.
    NoMatchingArm {
        /// The scrutinee's tag.
        tag: u32,
    },
    /// The step budget was exhausted.
    OutOfFuel {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// `=` was applied to values without structural equality (closures,
    /// arenas).
    EqualityUndefined,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::StackUnderflow { instr } => {
                write!(f, "stack underflow executing `{instr}`")
            }
            MachineError::TypeMismatch {
                instr,
                expected,
                found,
            } => write!(f, "`{instr}` expected {expected}, found {found}"),
            MachineError::DivideByZero => f.write_str("integer division by zero"),
            MachineError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            MachineError::Fail(m) => write!(f, "failure: {m}"),
            MachineError::NoMatchingArm { tag } => {
                write!(f, "no switch arm matches constructor tag {tag}")
            }
            MachineError::OutOfFuel { fuel } => {
                write!(f, "reduction budget of {fuel} steps exhausted")
            }
            MachineError::EqualityUndefined => {
                f.write_str("equality is not defined on functions or code")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// SML `div`: floor division, rounding toward negative infinity
/// (`~7 div 2 = ~4`), unlike Rust's truncating `/`. The divisor must be
/// nonzero; `i64::MIN div -1` wraps like the other arithmetic primitives.
pub fn floor_div(x: i64, y: i64) -> i64 {
    let q = x.wrapping_div(y);
    if x.wrapping_rem(y) != 0 && (x < 0) != (y < 0) {
        q.wrapping_sub(1)
    } else {
        q
    }
}

/// SML `mod`: the remainder matching [`floor_div`], taking the divisor's
/// sign (`~7 mod 2 = 1`), unlike Rust's truncating `%`. The divisor must
/// be nonzero.
pub fn floor_mod(x: i64, y: i64) -> i64 {
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        r.wrapping_add(y)
    } else {
        r
    }
}

/// Execution statistics, the paper's measurement surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Reduction steps (instructions executed) — Table 1's unit.
    pub steps: u64,
    /// Instructions appended to arenas (`emit`, `lift`, and the merge
    /// family each count the instructions they append).
    pub emitted: u64,
    /// Arenas created by `arena`.
    pub arenas: u64,
    /// `call` transfers into generated code.
    pub calls: u64,
    /// Arena freezes that materialized code (cache misses). Each miss
    /// copies — and, under `set_optimize`, re-optimizes — the arena.
    pub freezes: u64,
    /// Arena freezes served from the cached snapshot.
    pub freeze_hits: u64,
    /// Reduction steps executed by fused superinstructions (the fusion
    /// layer of DESIGN.md §11). Each fused dispatch does the work of two
    /// or more unfused steps, so this meters how much of a run the fusion
    /// pass actually covered.
    pub fused: u64,
    /// High-water mark of the value stack.
    pub max_stack: usize,
    /// Blocks promoted by the adaptive tier controller
    /// ([`Machine::set_tier_policy`]).
    pub promotions: u64,
    /// Freeze misses that re-rendered an arena which had already been
    /// frozen under the same flavor (the arena grew in between). The old
    /// snapshot — and any tier state attached to its block — stays
    /// valid; the new rendering starts cold.
    pub refreezes: u64,
    /// Baseline reduction steps executed at each tier under an adaptive
    /// policy (0 cold, 1 fused, 2 fused + native). Sums to `steps` when
    /// the controller is enabled; all zero otherwise.
    pub tier_steps: [u64; 3],
    /// Per-opcode executed-step counts, when enabled by
    /// [`Machine::set_count_opcodes`].
    pub opcodes: Option<OpcodeCounts>,
}

impl Stats {
    /// The change since an earlier snapshot of the same machine's stats
    /// (`max_stack` is a high-water mark, not a delta, and is carried
    /// over; per-opcode counts are differenced when both ends have them).
    #[must_use]
    pub fn delta_since(&self, before: &Stats) -> Stats {
        Stats {
            steps: self.steps - before.steps,
            emitted: self.emitted - before.emitted,
            arenas: self.arenas - before.arenas,
            calls: self.calls - before.calls,
            freezes: self.freezes - before.freezes,
            freeze_hits: self.freeze_hits - before.freeze_hits,
            fused: self.fused - before.fused,
            max_stack: self.max_stack,
            promotions: self.promotions - before.promotions,
            refreezes: self.refreezes - before.refreezes,
            tier_steps: [
                self.tier_steps[0] - before.tier_steps[0],
                self.tier_steps[1] - before.tier_steps[1],
                self.tier_steps[2] - before.tier_steps[2],
            ],
            opcodes: match (&self.opcodes, &before.opcodes) {
                (Some(after), Some(before)) => Some(after.delta_since(before)),
                (after, _) => *after,
            },
        }
    }
}

/// Executed-step counts per opcode, indexed by [`Instr::opcode`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpcodeCounts(pub [u64; OPCODE_COUNT]);

impl OpcodeCounts {
    /// The count for one mnemonic (0 for unknown mnemonics).
    pub fn get(&self, mnemonic: &str) -> u64 {
        OPCODE_NAMES
            .iter()
            .position(|&n| n == mnemonic)
            .map_or(0, |i| self.0[i])
    }

    /// `(mnemonic, count)` pairs for every opcode with a nonzero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        OPCODE_NAMES
            .iter()
            .zip(self.0.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&n, &c)| (n, c))
    }

    fn delta_since(&self, before: &OpcodeCounts) -> OpcodeCounts {
        let mut out = [0u64; OPCODE_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i] - before.0[i];
        }
        OpcodeCounts(out)
    }
}

/// One control-stack frame: a block of a segment plus the next
/// instruction index within it.
#[derive(Debug, Clone)]
struct Frame {
    seg: CodeSeg,
    block: BlockId,
    pc: usize,
}

/// The CCAM.
///
/// A machine owns mutable execution state (value stack, control stack,
/// statistics, print-output buffer) and can run many programs in
/// sequence; statistics accumulate until [`Machine::reset_stats`].
///
/// # Examples
///
/// ```
/// use ccam::instr::{Instr, PrimOp};
/// use ccam::machine::Machine;
/// use ccam::seg::CodeSeg;
/// use ccam::value::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Compute (3, 4) |-> 3 + 4.
/// let seg = CodeSeg::new();
/// let code = seg.entry(vec![Instr::Prim(PrimOp::Add)]);
/// let mut m = Machine::new();
/// let out = m.run(code, Value::pair(Value::Int(3), Value::Int(4)))?;
/// assert!(matches!(out, Value::Int(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    /// Value stack, statistics, fuel, and output — everything the
    /// straight-line step functions operate on.
    state: MachineState,
    control: Vec<Frame>,
    trace: Option<Trace>,
    optimize: bool,
    fuse: bool,
    native: bool,
    /// The adaptive tier controller, when enabled by
    /// [`Machine::set_tier_policy`].
    adaptive: Option<Adaptive>,
    /// Dynamic opcode-pair frequency profile, when enabled by
    /// [`Machine::set_profile_pairs`]. Boxed: the table is
    /// `OPCODE_COUNT²` counters, too large to live inline in every
    /// machine.
    pair_profile: Option<Box<PairCounts>>,
}

/// The adaptive tier controller's policy knobs (ROADMAP item 4,
/// DESIGN.md §15): how many activations a block runs cold before
/// promotion, how many fusion rules its own profile may enable, and
/// whether promoted blocks are also lowered to the native tier. One
/// policy object replaces the eight hand-enumerated static flavors; the
/// controller evaluates it per block, at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TierPolicy {
    /// Activations a block runs cold before promotion (`0` promotes at
    /// the very first activation).
    pub promote_after: u64,
    /// Maximum number of fusion rules enabled per promoted block, ranked
    /// by the block's own pair profile ([`crate::opt::select_rules`]).
    pub fuse_top_k: usize,
    /// Whether promoted blocks are additionally lowered to the
    /// thread-coded native tier (tier 2 instead of tier 1).
    pub use_native: bool,
}

impl Default for TierPolicy {
    /// Promote after 8 activations, every profitable rule, native on.
    fn default() -> Self {
        TierPolicy {
            promote_after: 8,
            fuse_top_k: crate::opt::FUSE_RULE_COUNT,
            use_native: true,
        }
    }
}

/// Adaptive-mode configuration: the policy plus the baseline cost model
/// steps are charged in (see [`Machine::set_tier_policy`]).
#[derive(Debug, Clone, Copy)]
struct Adaptive {
    policy: TierPolicy,
    spine_units: bool,
}

/// An opcode-pair frequency table: `counts[a][b]` is how many times
/// opcode `b` executed immediately after opcode `a` within one
/// straight-line dispatch run (control transfers reset the chain). This
/// is the dynamic profile that justifies the fused opcodes of the
/// superinstruction layer (DESIGN.md §11).
pub type PairCounts = [[u64; OPCODE_COUNT]; OPCODE_COUNT];

/// One recorded execution position: which block of the running segment,
/// the instruction index within it, and the instruction's mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Block index of the executing frame.
    pub block: u32,
    /// Instruction index within the block.
    pub pc: usize,
    /// The executed instruction's mnemonic.
    pub mnemonic: &'static str,
}

/// A bounded execution trace: the `(block, pc, mnemonic)` of the first
/// `limit` executed instructions.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Executed instructions, in order.
    pub entries: Vec<TraceEntry>,
    /// Maximum number of entries recorded.
    pub limit: usize,
}

impl Trace {
    /// Just the mnemonics, in execution order.
    pub fn mnemonics(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.mnemonic).collect()
    }
}

/// Fuel units one instruction charges: the number of unfused pair-spine
/// reduction steps it stands for. `Acc(n)` replaces `fst^n; snd`, each
/// fused superinstruction replaces the pair it covers, and `env_cons`
/// replaces exactly one `cons`. Keeping fuel in these units makes a fuel
/// budget exhaust at the same point in every execution mode — the cost
/// model the budget was set against is the paper's, not whichever
/// dispatch encoding happens to run.
pub(crate) fn fuel_cost(i: &Instr) -> u64 {
    match i {
        Instr::Acc(n) => *n as u64 + 1,
        Instr::PushAcc(n) | Instr::AccApp(n) => *n as u64 + 2,
        Instr::QuoteCons(_) | Instr::SwapCons | Instr::ConsApp | Instr::PushQuote(_) => 2,
        _ => 1,
    }
}

/// Steps one dispatch stands for against an indexed/flat-env baseline,
/// where `acc` is itself a single compiled instruction: each fused pair
/// dispatch counts two, everything else one. (Against the pair-spine
/// baseline the charge is [`fuel_cost`] — there `acc n` stands for the
/// `n + 1`-step `fst^n; snd` walk.)
fn indexed_charge(opcode: usize) -> u64 {
    // 24..=29: push_acc, quote_cons, swap_cons, cons_app, acc_app,
    // push_quote — the six fused opcodes of the DISPATCH table.
    if (24..=29).contains(&opcode) {
        2
    } else {
        1
    }
}

/// How many baseline steps the unfused rendering of one dispatch would
/// have counted before exhausting a budget with `left` fuel units
/// remaining — the aborting step included, matching `account`'s
/// count-then-fail order. Fuel is always charged in pair-spine units, so
/// against that baseline every constituent step costs one unit; against
/// an indexed baseline a fused dispatch stands for two instructions
/// whose individual fuel costs decide which of them aborts.
fn abort_charge(mnemonic: &str, fuel_cost: u64, spine_units: bool, left: u64) -> u64 {
    if spine_units {
        return left + 1;
    }
    let parts: [u64; 2] = match mnemonic {
        "push_acc" => [1, fuel_cost - 1],
        "acc_app" => [fuel_cost - 1, 1],
        "quote_cons" | "swap_cons" | "cons_app" | "push_quote" => [1, 1],
        _ => return 1,
    };
    let mut spent = 0;
    for (i, cost) in parts.iter().enumerate() {
        spent += cost;
        if spent > left {
            return i as u64 + 1;
        }
    }
    parts.len() as u64
}

/// A step function: one straight-line opcode over the shared state. The
/// wrapper decodes the operands from the instruction and calls the typed
/// template in [`core`]/[`env`]/[`fused`].
type StepFn = fn(&mut MachineState, &CodeSeg, &Instr) -> Result<(), MachineError>;

/// A transfer function: one control-transfer or segment-mutating opcode
/// over the whole machine. Runs with the instruction borrow released.
type TransferFn = fn(&mut Machine, &CodeSeg, &Instr) -> Result<(), MachineError>;

/// How the dispatcher executes one opcode.
enum Dispatch {
    /// Straight-line: runs inline under the block's instruction borrow.
    /// None of these appends to a segment's instruction vector
    /// (`emit`/`lift` push to the arena's *staging* buffer) or touches
    /// the control stack, so the borrow stays valid.
    Step(StepFn),
    /// Control transfer or segment mutator: these push frames or freeze
    /// arena contents into a segment, so the loop clones the single
    /// instruction, releases the borrow, saves the pc, and re-resolves
    /// the top frame after.
    Transfer(TransferFn),
}

fn s_id(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::id(st)
}
fn s_fst(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    env::fst(st)
}
fn s_snd(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    env::snd(st)
}
fn s_push(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::push(st)
}
fn s_swap(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::swap(st)
}
fn s_cons(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::cons_pair(st)
}
fn s_quote(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Quote(v) => core::quote(st, v),
        _ => unreachable!("quote dispatched on {i:?}"),
    }
}
fn s_cur(st: &mut MachineState, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Cur(body) => core::cur(st, seg, *body),
        _ => unreachable!("cur dispatched on {i:?}"),
    }
}
fn s_emit(st: &mut MachineState, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Emit(inner) => core::emit(st, seg, inner),
        _ => unreachable!("emit dispatched on {i:?}"),
    }
}
fn s_lift(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::lift(st)
}
fn s_arena(st: &mut MachineState, seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    core::new_arena(st, seg)
}
fn s_recclos(st: &mut MachineState, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::RecClos(bodies) => core::rec_clos(st, seg, bodies),
        _ => unreachable!("recclos dispatched on {i:?}"),
    }
}
fn s_pack(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Pack(tag) => core::pack(st, *tag),
        _ => unreachable!("pack dispatched on {i:?}"),
    }
}
fn s_prim(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Prim(op) => core::prim(st, *op),
        _ => unreachable!("prim dispatched on {i:?}"),
    }
}
fn s_fail(_st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Fail(msg) => core::fail(msg),
        _ => unreachable!("fail dispatched on {i:?}"),
    }
}
fn s_acc(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Acc(n) => env::acc(st, *n),
        _ => unreachable!("acc dispatched on {i:?}"),
    }
}
fn s_push_acc(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::PushAcc(n) => fused::push_acc(st, *n),
        _ => unreachable!("push_acc dispatched on {i:?}"),
    }
}
fn s_quote_cons(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::QuoteCons(v) => fused::quote_cons(st, v),
        _ => unreachable!("quote_cons dispatched on {i:?}"),
    }
}
fn s_swap_cons(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    fused::swap_cons(st)
}
fn s_push_quote(st: &mut MachineState, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::PushQuote(v) => fused::push_quote(st, v),
        _ => unreachable!("push_quote dispatched on {i:?}"),
    }
}
fn s_env_cons(st: &mut MachineState, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    env::env_cons(st)
}

fn t_app(m: &mut Machine, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    transfer::app(m)
}
fn t_merge(m: &mut Machine, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    transfer::merge(m)
}
fn t_call(m: &mut Machine, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    transfer::call(m)
}
fn t_branch(m: &mut Machine, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Branch(t, e) => transfer::branch(m, seg, *t, *e),
        _ => unreachable!("branch dispatched on {i:?}"),
    }
}
fn t_switch(m: &mut Machine, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::Switch(table) => transfer::switch(m, seg, table),
        _ => unreachable!("switch dispatched on {i:?}"),
    }
}
fn t_merge_branch(m: &mut Machine, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    transfer::merge_branch(m)
}
fn t_merge_switch(m: &mut Machine, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::MergeSwitch(spec) => transfer::merge_switch(m, spec),
        _ => unreachable!("merge_switch dispatched on {i:?}"),
    }
}
fn t_merge_rec(m: &mut Machine, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::MergeRec(n) => transfer::merge_rec(m, *n),
        _ => unreachable!("merge_rec dispatched on {i:?}"),
    }
}
fn t_cons_app(m: &mut Machine, _seg: &CodeSeg, _i: &Instr) -> Result<(), MachineError> {
    transfer::cons_app(m)
}
fn t_acc_app(m: &mut Machine, _seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    match i {
        Instr::AccApp(n) => transfer::acc_app(m, *n),
        _ => unreachable!("acc_app dispatched on {i:?}"),
    }
}

/// The dispatch table, indexed by [`Instr::opcode`]. Order must match the
/// opcode numbering exactly; `dispatch_table_covers_every_opcode` in the
/// test module pins it.
static DISPATCH: [Dispatch; OPCODE_COUNT] = [
    Dispatch::Step(s_id),               // 0  id
    Dispatch::Step(s_fst),              // 1  fst
    Dispatch::Step(s_snd),              // 2  snd
    Dispatch::Step(s_push),             // 3  push
    Dispatch::Step(s_swap),             // 4  swap
    Dispatch::Step(s_cons),             // 5  cons
    Dispatch::Transfer(t_app),          // 6  app
    Dispatch::Step(s_quote),            // 7  quote
    Dispatch::Step(s_cur),              // 8  cur
    Dispatch::Step(s_emit),             // 9  emit
    Dispatch::Step(s_lift),             // 10 lift
    Dispatch::Step(s_arena),            // 11 arena
    Dispatch::Transfer(t_merge),        // 12 merge
    Dispatch::Transfer(t_call),         // 13 call
    Dispatch::Transfer(t_branch),       // 14 branch
    Dispatch::Step(s_recclos),          // 15 recclos
    Dispatch::Step(s_pack),             // 16 pack
    Dispatch::Transfer(t_switch),       // 17 switch
    Dispatch::Step(s_prim),             // 18 prim
    Dispatch::Step(s_fail),             // 19 fail
    Dispatch::Transfer(t_merge_branch), // 20 merge_branch
    Dispatch::Transfer(t_merge_switch), // 21 merge_switch
    Dispatch::Transfer(t_merge_rec),    // 22 merge_rec
    Dispatch::Step(s_acc),              // 23 acc
    Dispatch::Step(s_push_acc),         // 24 push_acc
    Dispatch::Step(s_quote_cons),       // 25 quote_cons
    Dispatch::Step(s_swap_cons),        // 26 swap_cons
    Dispatch::Transfer(t_cons_app),     // 27 cons_app
    Dispatch::Transfer(t_acc_app),      // 28 acc_app
    Dispatch::Step(s_push_quote),       // 29 push_quote
    Dispatch::Step(s_env_cons),         // 30 env_cons
];

/// Whether an opcode transfers control (or mutates segments) — i.e. must
/// not run under the dispatch loop's instruction borrow. The native tier
/// uses this to decide statically, at lowering time, where a block's
/// straight-line runs end.
pub(crate) fn is_transfer(opcode: usize) -> bool {
    matches!(DISPATCH[opcode], Dispatch::Transfer(_))
}

/// The rendering applied when freezing an arena, per `(optimize, fuse)`
/// combination (the low two bits of the freeze flavor). The native bit
/// selects a distinct cache slot but the same rendering — lowering is
/// memoized per frozen block, not re-rendered.
type FreezeRender = fn(&CodeSeg, &[Instr]) -> Vec<Instr>;

fn render_plain(_seg: &CodeSeg, instrs: &[Instr]) -> Vec<Instr> {
    instrs.to_vec()
}

fn render_optimize_fuse(seg: &CodeSeg, instrs: &[Instr]) -> Vec<Instr> {
    let optimized = crate::opt::peephole(seg, instrs);
    crate::opt::fuse(seg, &optimized)
}

/// Indexed by `flavor & 0b11` where the flavor is
/// `optimize | fuse << 1 | native << 2`.
const FREEZE_RENDERS: [FreezeRender; 4] = [
    render_plain,
    crate::opt::peephole,
    crate::opt::fuse,
    render_optimize_fuse,
];

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// A fresh machine with no step budget.
    pub fn new() -> Self {
        Machine {
            state: MachineState::default(),
            control: Vec::new(),
            trace: None,
            optimize: false,
            fuse: false,
            native: false,
            adaptive: None,
            pair_profile: None,
        }
    }

    /// A machine that aborts with [`MachineError::OutOfFuel`] after
    /// `fuel` reduction steps.
    pub fn with_fuel(fuel: u64) -> Self {
        let mut m = Machine::new();
        m.state.fuel = Some(fuel);
        m
    }

    /// Enables emission-time peephole optimization (§4.2's "more
    /// sophisticated specialization system"): arenas are optimized by
    /// [`crate::opt::peephole`] when frozen by `call` and the merge
    /// family — constant folding, `+ 0`/`* 1` elimination, `* 0`
    /// absorption, constant-branch folding.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Whether emission-time optimization is enabled.
    pub fn optimize(&self) -> bool {
        self.optimize
    }

    /// Enables superinstruction fusion (DESIGN.md §11): arenas are
    /// rewritten by [`crate::opt::fuse`] when frozen, so generated code
    /// dispatches fused opcodes. Composes with [`Machine::set_optimize`]
    /// (peephole first, then fusion); statically compiled code is fused
    /// by the session layer when the same flag is set there.
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on;
    }

    /// Whether superinstruction fusion is enabled.
    pub fn fuse(&self) -> bool {
        self.fuse
    }

    /// Enables the thread-coded native tier (DESIGN.md §13): blocks are
    /// lowered once into flat arrays of pre-decoded op closures
    /// ([`crate::native`]) and dispatched without per-step instruction
    /// decode. Frozen code is lowered eagerly at freeze time; everything
    /// else on first execution, memoized per block. Identical semantics,
    /// step counts, fuel accounting, traces, and profiles — only the
    /// dispatch mechanism changes.
    pub fn set_native(&mut self, on: bool) {
        self.native = on;
    }

    /// Whether the thread-coded native tier is enabled.
    pub fn native(&self) -> bool {
        self.native
    }

    /// Enables (`Some`) or disables (`None`) the adaptive tier
    /// controller. While enabled, every frame activation consults the
    /// executed block's per-segment counters: cold blocks run plainly,
    /// and a block whose activation count crosses
    /// [`TierPolicy::promote_after`] is re-rendered through
    /// profile-selected fusion (and, under [`TierPolicy::use_native`],
    /// native lowering) — a promotion that is invisible to every
    /// observable: verdicts, step counts, fuel, and output are identical
    /// to the cold execution at every promotion point.
    ///
    /// `spine_units` names the baseline cost model the running code was
    /// compiled against: `true` for the paper's pair-spine environments
    /// (an `acc n` stands for the `fst^n; snd` walk), `false` for
    /// indexed/flat environments (an `acc` is itself one compiled
    /// instruction). Steps under the controller are charged in baseline
    /// units, which is what makes promotion step-transparent.
    ///
    /// Promotion is suppressed while a trace is recording
    /// ([`Machine::set_trace`]): a fused rendering has a different
    /// `(block, pc, mnemonic)` shape, and traces are defined to observe
    /// the cold rendering.
    pub fn set_tier_policy(&mut self, policy: Option<TierPolicy>, spine_units: bool) {
        self.adaptive = policy.map(|policy| Adaptive {
            policy,
            spine_units,
        });
    }

    /// The adaptive tier policy, if the controller is enabled.
    pub fn tier_policy(&self) -> Option<TierPolicy> {
        self.adaptive.map(|a| a.policy)
    }

    /// Enables or disables dynamic opcode-pair profiling (surfaced
    /// through [`Machine::pair_profile`]). Enabling zeroes any previous
    /// counts.
    pub fn set_profile_pairs(&mut self, on: bool) {
        self.pair_profile = on.then(|| Box::new([[0u64; OPCODE_COUNT]; OPCODE_COUNT]));
    }

    /// The opcode-pair frequency table, if profiling is enabled.
    pub fn pair_profile(&self) -> Option<&PairCounts> {
        self.pair_profile.as_deref()
    }

    /// The cache slot this machine's flags select in the 8-way
    /// `(optimize × fuse × native)` freeze lattice.
    fn freeze_flavor(&self) -> usize {
        usize::from(self.optimize) | usize::from(self.fuse) << 1 | usize::from(self.native) << 2
    }

    /// Freezes an arena, applying the optimizer when enabled. Served from
    /// the arena's snapshot cache whenever the arena has not grown since
    /// the previous freeze of the same flavor, so specialize-once /
    /// run-many programs pay for copying, optimization, and native
    /// lowering once.
    fn freeze(&mut self, arena: &Arena) -> CodeRef {
        // One cache slot per (optimize, fuse, native) flavor, so machines
        // with different flags sharing an arena never serve each other's
        // rendering.
        let flavor = self.freeze_flavor();
        let stale = arena.snapshot_len(flavor).is_some_and(|l| l != arena.len());
        let (code, hit) = arena.freeze_slot(flavor, FREEZE_RENDERS[flavor & 0b11]);
        if hit {
            self.state.stats.freeze_hits += 1;
        } else {
            self.state.stats.freezes += 1;
            if stale {
                // The arena grew since its last freeze of this flavor.
                // The old snapshot block — and any tier state the
                // adaptive controller attached to it — stays valid; the
                // replacement is a fresh block that starts cold.
                self.state.stats.refreezes += 1;
            }
        }
        if self.native {
            // Lower the frozen block now: run-many programs pay for the
            // operand decode at freeze time, never on the run path.
            native::lowered(&code.seg, code.block);
        }
        code
    }

    /// Records the `(block, pc, mnemonic)` of the first `limit` executed
    /// instructions (for debugging and tests). Replaces any existing
    /// trace.
    pub fn set_trace(&mut self, limit: usize) {
        self.trace = Some(Trace {
            entries: Vec::new(),
            limit,
        });
    }

    /// The current trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> Stats {
        self.state.stats
    }

    /// Enables or disables per-opcode step counting (surfaced through
    /// [`Stats::opcodes`]). Enabling zeroes any previous counts.
    pub fn set_count_opcodes(&mut self, on: bool) {
        self.state.stats.opcodes = on.then(OpcodeCounts::default);
    }

    /// Clears accumulated statistics (the output buffer is kept; opcode
    /// counting stays enabled if it was).
    pub fn reset_stats(&mut self) {
        let opcodes = self.state.stats.opcodes.map(|_| OpcodeCounts::default());
        self.state.stats = Stats {
            opcodes,
            ..Stats::default()
        };
        self.state.fuel_spent = 0;
    }

    /// Everything printed by `print` so far.
    pub fn output(&self) -> &str {
        &self.state.output
    }

    /// Clears the output buffer.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.state.output)
    }

    /// Runs `code` with `input` as the initial top of stack, returning the
    /// final top of stack.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on dynamic failure; the machine's stack
    /// and control are cleared, but statistics and output are kept.
    pub fn run(&mut self, code: CodeRef, input: Value) -> Result<Value, MachineError> {
        self.state.stack.clear();
        self.control.clear();
        self.state.stack.push(input);
        self.control.push(Frame {
            seg: code.seg,
            block: code.block,
            pc: 0,
        });
        self.state.fuel_spent = 0;
        let result = self.steps_loop();
        if result.is_err() {
            self.state.stack.clear();
            self.control.clear();
        }
        result
    }

    /// Per-instruction accounting, identical across the interpreted and
    /// native tiers: the opcode-pair profile chain, the bounded trace,
    /// the step and per-opcode counters, and the fuel check — with a
    /// step that exhausts the budget counted but not executed.
    ///
    /// `step_charge` is how many steps this dispatch counts as: 1
    /// normally, its baseline-unit cost under an adaptive policy (so a
    /// promoted block's fused dispatches report exactly the steps their
    /// cold rendering would have). `tier` attributes the charge in
    /// [`Stats::tier_steps`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn account(
        &mut self,
        block: BlockId,
        pc: usize,
        opcode: usize,
        mnemonic: &'static str,
        fuel_cost: u64,
        step_charge: u64,
        tier: usize,
        prev_op: &mut Option<usize>,
    ) -> Result<(), MachineError> {
        if let Some(hist) = &mut self.pair_profile {
            if let Some(p) = *prev_op {
                hist[p][opcode] += 1;
            }
            *prev_op = Some(opcode);
        }
        if let Some(trace) = &mut self.trace {
            if trace.entries.len() < trace.limit {
                trace.entries.push(TraceEntry {
                    block: block.0,
                    pc,
                    mnemonic,
                });
            }
        }
        let mut charge = step_charge;
        let mut exhausted = None;
        if let Some(fuel) = self.state.fuel {
            let left = fuel.saturating_sub(self.state.fuel_spent);
            self.state.fuel_spent += fuel_cost;
            if self.state.fuel_spent > fuel {
                if let Some(ad) = self.adaptive {
                    // A fused dispatch can straddle the budget boundary;
                    // count only the baseline steps the unfused column
                    // would have counted (the aborting one included), so
                    // exhaustion is observationally identical at every
                    // tier.
                    charge = abort_charge(mnemonic, fuel_cost, ad.spine_units, left);
                }
                exhausted = Some(fuel);
            }
        }
        self.state.stats.steps += charge;
        if let Some(counts) = &mut self.state.stats.opcodes {
            counts.0[opcode] += charge;
        }
        if self.adaptive.is_some() {
            self.state.stats.tier_steps[tier] += charge;
        }
        match exhausted {
            Some(fuel) => Err(MachineError::OutOfFuel { fuel }),
            None => Ok(()),
        }
    }

    fn steps_loop(&mut self) -> Result<Value, MachineError> {
        'frames: loop {
            // Resolve the top frame once: clone the segment handle (one
            // Rc bump per frame activation, not per step), look up the
            // block's range, and borrow the segment's instruction vector
            // for the whole dispatch run.
            let (seg, block, mut pc) = match self.control.last() {
                None => {
                    return self
                        .state
                        .stack
                        .pop()
                        .ok_or(MachineError::StackUnderflow { instr: "halt" });
                }
                Some(frame) => (frame.seg.clone(), frame.block, frame.pc),
            };
            // The adaptive tier controller hooks every frame activation:
            // a fresh activation (pc == 0) counts toward, redirects to,
            // or performs the block's promotion; a mid-frame
            // re-activation just recovers the tier the frame already
            // runs at.
            let (block, tier) = match self.adaptive {
                Some(ad) => self.tier_activate(&seg, block, pc, ad),
                None => (block, 0),
            };
            let (start, len) = seg.block_bounds(block);
            if self.native || tier == 2 {
                let lowered = native::lowered(&seg, block);
                self.run_native_block(&seg, block, &lowered, pc, tier)?;
                continue 'frames;
            }
            let instrs = seg.borrow_instrs();
            // Opcode-pair chain for the dynamic profile: adjacency is
            // only meaningful within one straight-line run, so the chain
            // restarts at every frame activation.
            let mut prev_op: Option<usize> = None;
            let charge_mode = self.adaptive.map(|a| a.spine_units);
            while pc < len {
                let instr = &instrs[start + pc];
                pc += 1;
                let opcode = instr.opcode();
                let fuel = fuel_cost(instr);
                let charge = match charge_mode {
                    None => 1,
                    Some(true) => fuel,
                    Some(false) => indexed_charge(opcode),
                };
                self.account(
                    block,
                    pc - 1,
                    opcode,
                    instr.mnemonic(),
                    fuel,
                    charge,
                    tier,
                    &mut prev_op,
                )?;
                match &DISPATCH[opcode] {
                    Dispatch::Step(step) => step(&mut self.state, &seg, instr)?,
                    Dispatch::Transfer(run) => {
                        let owned = instr.clone();
                        drop(instrs);
                        self.control.last_mut().expect("frame present mid-block").pc = pc;
                        run(self, &seg, &owned)?;
                        self.state.note_stack_depth();
                        continue 'frames;
                    }
                }
                self.state.note_stack_depth();
            }
            // Block exhausted: return to the caller's frame.
            drop(instrs);
            self.control.pop();
        }
    }

    /// Runs one activation of a thread-coded block, from `pc` to the next
    /// control transfer or the block's end. Accounting is byte-for-byte
    /// the interpreter's ([`Machine::account`] with the op's pre-computed
    /// opcode, mnemonic, and fuel charge), so steps, traces, profiles,
    /// and fuel exhaust identically in both tiers.
    fn run_native_block(
        &mut self,
        seg: &CodeSeg,
        block: BlockId,
        code: &native::NativeBlock,
        mut pc: usize,
        tier: usize,
    ) -> Result<(), MachineError> {
        let mut prev_op: Option<usize> = None;
        let charge_mode = self.adaptive.map(|a| a.spine_units);
        while let Some(op) = code.ops.get(pc) {
            pc += 1;
            let charge = match charge_mode {
                None => 1,
                Some(true) => op.fuel,
                Some(false) => indexed_charge(op.opcode),
            };
            self.account(
                block,
                pc - 1,
                op.opcode,
                op.mnemonic,
                op.fuel,
                charge,
                tier,
                &mut prev_op,
            )?;
            match &op.run {
                native::NativeRun::Step(step) => step(&mut self.state, seg)?,
                native::NativeRun::Transfer(instr) => {
                    // Transfers are statically known at lowering time, so
                    // the pc is saved before the op runs — the frame the
                    // transfer pushes must not receive it.
                    self.control.last_mut().expect("frame present mid-block").pc = pc;
                    match &DISPATCH[op.opcode] {
                        Dispatch::Transfer(run) => run(self, seg, instr)?,
                        Dispatch::Step(_) => unreachable!("step op lowered as transfer"),
                    }
                    self.state.note_stack_depth();
                    return Ok(());
                }
            }
            self.state.note_stack_depth();
        }
        // Block exhausted: return to the caller's frame.
        self.control.pop();
        Ok(())
    }

    /// The tier controller's frame-activation hook: counts one
    /// activation of `block`, redirects to its promoted rendering if one
    /// exists, and performs the promotion itself when the block's own
    /// activation count crosses the policy threshold. Returns the block
    /// to execute and its tier.
    ///
    /// Promotion happens only at `pc == 0` — return frames carry pcs
    /// into the rendering they started in, so a frame is never switched
    /// mid-flight — and renderings are appended, never replaced: the
    /// cold block stays valid for frames already inside it, and a
    /// block's tier only rises.
    fn tier_activate(
        &mut self,
        seg: &CodeSeg,
        block: BlockId,
        pc: usize,
        ad: Adaptive,
    ) -> (BlockId, usize) {
        if self.trace.is_some() {
            // Traces observe the cold rendering; see `set_tier_policy`.
            return (block, 0);
        }
        if pc > 0 {
            // Mid-frame re-activation (a nested call returned): the
            // frame already runs the rendering its pc indexes into.
            return (block, seg.tier_level(block) as usize);
        }
        match seg.tier_probe(block) {
            TierProbe::Promoted(promoted, level) => {
                self.redirect_frame(promoted);
                return (promoted, level as usize);
            }
            TierProbe::Cold(execs, level) => {
                if execs < ad.policy.promote_after {
                    return (block, level as usize);
                }
            }
        }
        // Promote: re-render the block's straight line from its own
        // profile — the static pair histogram of the instructions every
        // activation executes, ranked by `fuse_top_k` — then optionally
        // lower the result to the native tier.
        let instrs = seg.block_to_vec(block);
        let mut sel = crate::opt::select_rules(&instrs, ad.policy.fuse_top_k);
        if !ad.spine_units {
            // The indexed/flat baseline charges `acc n` as one step, so
            // collapsing an access chain would make fewer steps than the
            // baseline counted; pair fusion alone keeps the bijection
            // between fused dispatches and baseline instruction pairs.
            sel.disable_access();
        }
        let (fused, changed) = crate::opt::fuse_selected(&instrs, &sel);
        let promoted = if changed { seg.add_block(fused) } else { block };
        let level = if ad.policy.use_native {
            native::lowered(seg, promoted);
            2
        } else if changed {
            1
        } else {
            // Nothing to fuse and no native tier: record the decision
            // (so it is not re-made every activation) but the block
            // keeps running cold.
            0
        };
        seg.tier_promote(block, promoted, level);
        self.state.stats.promotions += 1;
        if promoted != block {
            self.redirect_frame(promoted);
        }
        (promoted, level as usize)
    }

    /// Points the top frame — known to be at a fresh activation — at
    /// `promoted`.
    fn redirect_frame(&mut self, promoted: BlockId) {
        let frame = self
            .control
            .last_mut()
            .expect("frame present at activation");
        debug_assert_eq!(frame.pc, 0, "redirect only at a fresh activation");
        frame.block = promoted;
    }

    fn enter(&mut self, code: CodeRef) {
        self.control.push(Frame {
            seg: code.seg,
            block: code.block,
            pc: 0,
        });
    }
}
