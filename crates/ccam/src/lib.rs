//! **The CCAM** — the Categorical Abstract Machine of Cousineau, Curien,
//! and Mauny, extended for run-time code generation as described in
//! *Run-time Code Generation and Modal-ML* (Wickline, Lee, Pfenning;
//! PLDI 1998), §4.
//!
//! The machine adds five instructions to the CAM:
//!
//! | instruction | effect |
//! |---|---|
//! | `emit(i)` | append the static instruction `i` to the arena under construction |
//! | `lift`    | residualize the current value into the arena as a `quote` |
//! | `arena`   | create a fresh empty arena |
//! | `merge`   | insert one arena into another as a `Cur` function body |
//! | `call`    | splice dynamically generated code into the instruction stream |
//!
//! Generating extensions are encoded as sequences of `emit` instructions —
//! machine code is synthesized directly from machine code, Fabius-style,
//! with values embedded in the instruction stream as immediates. Nested
//! emits are structurally rejected ([`instr::validate`]).
//!
//! Code is **flat**: all instructions live in a contiguous [`seg::CodeSeg`]
//! arena, nested code (closure bodies, branch arms, …) is referenced by
//! [`seg::BlockId`] into the segment's block table, and run-time generation
//! appends frozen blocks to the segment's growable tail. Machine frames
//! are `(segment, block, pc)` triples, so dispatch walks a contiguous
//! slice with no per-step reference counting.
//!
//! The simulator counts **reduction steps** (one per executed instruction),
//! the measurement unit of the paper's Table 1, plus emitted-instruction,
//! arena, and call counters.
//!
//! # Examples
//!
//! Generate code at run time and execute it:
//!
//! ```
//! use ccam::instr::Instr;
//! use ccam::machine::Machine;
//! use ccam::seg::CodeSeg;
//! use ccam::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // With 42 as the current value: create an arena, residualize 42 into
//! // it (emitting `quote 42`), and call the generated code.
//! let seg = CodeSeg::new();
//! let prog = seg.entry(vec![
//!     Instr::Push,
//!     Instr::NewArena,
//!     Instr::ConsPair,   // (42, {})
//!     Instr::LiftV,      // (42, {quote 42})
//!     Instr::Call,       // runs the generated code
//! ]);
//! let mut machine = Machine::new();
//! let out = machine.run(prog, Value::Int(42))?;
//! assert!(matches!(out, Value::Int(42)));
//! assert_eq!(machine.stats().emitted, 1);
//! # Ok(())
//! # }
//! ```

pub mod disasm;
pub mod instr;
pub mod machine;
pub(crate) mod native;
pub mod opt;
pub mod portable;
pub mod seg;
pub mod value;
pub mod wire;

pub use instr::{Instr, PrimOp, SwitchArm, SwitchTable};
pub use machine::{Machine, MachineError, Stats};
pub use portable::{PortableCode, PortableInstr, PortableValue};
pub use seg::{BlockId, CodeBuilder, CodeRef, CodeSeg};
pub use value::{Arena, ConTag, Value};
pub use wire::{decode_value, encode_value, WireError};
