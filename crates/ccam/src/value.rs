//! Run-time values of the CCAM.

use crate::instr::Instr;
use crate::seg::{BlockId, CodeRef, CodeSeg};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A datatype constructor tag. The MLbox compiler assigns one per
/// constructor; the machine only compares them.
pub type ConTag = u32;

/// A group of mutually recursive closure bodies sharing one captured
/// environment.
#[derive(Debug)]
pub struct RecGroup {
    /// The environment captured at group-creation time.
    pub env: Value,
    /// The segment the bodies live in.
    pub seg: CodeSeg,
    /// One body block per function in the group.
    pub bodies: Rc<Vec<BlockId>>,
}

/// A non-recursive closure `[v : P]`.
#[derive(Debug)]
pub struct Closure {
    /// Captured environment value.
    pub env: Value,
    /// Body code.
    pub body: CodeRef,
}

/// An arena: a dynamically created code sequence under construction
/// (the paper's `{P}`).
///
/// An arena is a **staging buffer plus a target segment**: `emit`/`lift`/
/// `merge` append instructions to the staging buffer, and `call`/`merge`
/// freeze the buffer into a block at the growable tail of the segment.
/// The machine binds each arena to the segment of the frame that created
/// it, so generated code lands in the same contiguous segment as the
/// generator — the paper's arena model with flat addressing. The
/// implementation shares arenas by reference ([`Rc`]); the compiler
/// threads each arena linearly, so the sharing is unobservable.
///
/// Freezing is cached: the arena remembers the last frozen block (one
/// slot per rendering flavor — plain, optimized, fused, and
/// optimized-then-fused) together with the staging length it covered.
/// Instructions are only ever appended, so a length match proves the
/// cached block is still the current contents, and re-freezing a finished
/// generator returns the same block without copying or re-optimizing.
#[derive(Debug)]
pub struct Arena {
    staging: RefCell<Vec<Instr>>,
    seg: CodeSeg,
    cache: RefCell<[Option<(usize, BlockId)>; 4]>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena {
            staging: RefCell::new(Vec::new()),
            seg: CodeSeg::new(),
            cache: RefCell::new([None; 4]),
        }
    }
}

impl Arena {
    /// A fresh empty arena freezing into its own new segment.
    pub fn new() -> Rc<Self> {
        Rc::new(Arena::default())
    }

    /// A fresh empty arena freezing into `seg` (the machine binds arenas
    /// to the executing frame's segment).
    pub fn in_seg(seg: &CodeSeg) -> Rc<Self> {
        Rc::new(Arena {
            staging: RefCell::new(Vec::new()),
            seg: seg.clone(),
            cache: RefCell::new([None; 4]),
        })
    }

    /// The segment frozen blocks land in.
    pub fn seg(&self) -> &CodeSeg {
        &self.seg
    }

    /// Appends one instruction. Cached freezes of shorter contents stay
    /// valid as snapshots and are invalidated here only in the sense that
    /// the next freeze sees a longer arena and rebuilds.
    pub fn push(&self, i: Instr) {
        self.staging.borrow_mut().push(i);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.staging.borrow().len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.staging.borrow().is_empty()
    }

    /// Freezes the current contents into an executable block at the
    /// segment tail (the arena may continue to grow afterwards; the
    /// frozen block is a snapshot).
    pub fn freeze(&self) -> CodeRef {
        self.freeze_via(false, |_, instrs| instrs.to_vec()).0
    }

    /// Freezes through the cache slot picked by `optimized`, building the
    /// instruction vector with `build` (given the target segment, so the
    /// optimizer can register rewritten blocks) on a miss. Returns the
    /// code and whether it was served from the cache.
    pub fn freeze_via(
        &self,
        optimized: bool,
        build: impl FnOnce(&CodeSeg, &[Instr]) -> Vec<Instr>,
    ) -> (CodeRef, bool) {
        self.freeze_slot(usize::from(optimized), build)
    }

    /// Freezes through an explicit cache slot — one per rendering flavor
    /// (0 plain, 1 optimized, 2 fused, 3 optimized-then-fused), so
    /// machines running with different flags never serve each other's
    /// rendering of the same arena.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn freeze_slot(
        &self,
        slot: usize,
        build: impl FnOnce(&CodeSeg, &[Instr]) -> Vec<Instr>,
    ) -> (CodeRef, bool) {
        let len = self.staging.borrow().len();
        if let Some((cached_len, block)) = self.cache.borrow()[slot] {
            if cached_len == len {
                return (
                    CodeRef {
                        seg: self.seg.clone(),
                        block,
                    },
                    true,
                );
            }
        }
        let built = build(&self.seg, &self.staging.borrow());
        let block = self.seg.add_block(built);
        self.cache.borrow_mut()[slot] = Some((len, block));
        (
            CodeRef {
                seg: self.seg.clone(),
                block,
            },
            false,
        )
    }
}

/// A CCAM value.
///
/// Values are cheaply cloneable (interior [`Rc`]s). Tuples are represented
/// as right-nested pairs: `(a, b, c)` is `Pair(a, Pair(b, c))`.
#[derive(Debug, Clone)]
pub enum Value {
    /// The unit value `()`.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Rc<str>),
    /// A pair (also the environment spine and tuple encoding).
    Pair(Rc<(Value, Value)>),
    /// A closure `[v : P]`.
    Closure(Rc<Closure>),
    /// A member of a recursive closure group.
    RecClosure {
        /// The shared group.
        group: Rc<RecGroup>,
        /// Which member this value is.
        index: usize,
    },
    /// A datatype constructor application.
    Con(ConTag, Option<Rc<Value>>),
    /// A code arena under construction.
    Arena(Rc<Arena>),
    /// A mutable reference cell.
    Ref(Rc<RefCell<Value>>),
    /// A mutable array.
    Array(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    /// Builds a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Rc::new((a, b)))
    }

    /// Builds a right-nested tuple from components.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn tuple(parts: Vec<Value>) -> Value {
        let mut it = parts.into_iter().rev();
        let mut acc = it.next().expect("tuple must be non-empty");
        for v in it {
            acc = Value::pair(v, acc);
        }
        acc
    }

    /// Structural equality as used by the `=` primitive: defined for
    /// unit, integers, booleans, strings, pairs, and constructors;
    /// reference cells and arrays compare by identity. Returns `None` for
    /// closures and arenas (equality is not defined on them).
    pub fn structural_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Unit, Value::Unit) => Some(true),
            (Value::Int(a), Value::Int(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Pair(a), Value::Pair(b)) => {
                Some(a.0.structural_eq(&b.0)? && a.1.structural_eq(&b.1)?)
            }
            (Value::Con(ta, pa), Value::Con(tb, pb)) => {
                if ta != tb {
                    return Some(false);
                }
                match (pa, pb) {
                    (None, None) => Some(true),
                    (Some(a), Some(b)) => a.structural_eq(b),
                    _ => Some(false),
                }
            }
            (Value::Ref(a), Value::Ref(b)) => Some(Rc::ptr_eq(a, b)),
            (Value::Array(a), Value::Array(b)) => Some(Rc::ptr_eq(a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(p) => write!(f, "({}, {})", p.0, p.1),
            Value::Closure(_) => f.write_str("<fn>"),
            Value::RecClosure { .. } => f.write_str("<fn rec>"),
            Value::Con(tag, None) => write!(f, "con{tag}"),
            Value::Con(tag, Some(v)) => write!(f, "con{tag}({v})"),
            Value::Arena(a) => write!(f, "<arena:{}>", a.len()),
            Value::Ref(v) => write!(f, "ref {}", v.borrow()),
            Value::Array(a) => {
                f.write_str("[|")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("|]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_is_right_nested() {
        let t = Value::tuple(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        match t {
            Value::Pair(p) => {
                assert!(matches!(p.0, Value::Int(1)));
                assert!(matches!(&p.1, Value::Pair(q) if matches!(q.0, Value::Int(2))));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn structural_eq_on_cons() {
        let a = Value::Con(3, Some(Rc::new(Value::Int(1))));
        let b = Value::Con(3, Some(Rc::new(Value::Int(1))));
        let c = Value::Con(4, Some(Rc::new(Value::Int(1))));
        assert_eq!(a.structural_eq(&b), Some(true));
        assert_eq!(a.structural_eq(&c), Some(false));
    }

    #[test]
    fn refs_compare_by_identity() {
        let r1 = Value::Ref(Rc::new(RefCell::new(Value::Int(1))));
        let r2 = Value::Ref(Rc::new(RefCell::new(Value::Int(1))));
        assert_eq!(r1.structural_eq(&r1.clone()), Some(true));
        assert_eq!(r1.structural_eq(&r2), Some(false));
    }

    #[test]
    fn arena_grows_and_freezes() {
        let a = Arena::new();
        assert!(a.is_empty());
        a.push(Instr::Fst);
        a.push(Instr::Snd);
        let code = a.freeze();
        assert_eq!(code.len(), 2);
        a.push(Instr::Id);
        assert_eq!(a.len(), 3);
        assert_eq!(code.len(), 2, "frozen snapshot is immutable");
    }

    #[test]
    fn freeze_is_cached_until_growth() {
        let a = Arena::new();
        a.push(Instr::Fst);
        let c1 = a.freeze();
        let c2 = a.freeze();
        assert!(
            CodeRef::same_block(&c1, &c2),
            "repeated freeze reuses the snapshot"
        );
        a.push(Instr::Snd);
        let c3 = a.freeze();
        assert!(
            !CodeRef::same_block(&c1, &c3),
            "growth invalidates the cache"
        );
        assert_eq!(c3.len(), 2);
        // The optimized slot is cached independently of the plain one.
        let (o1, hit1) = a.freeze_via(true, |_, i| i.to_vec());
        let (o2, hit2) = a.freeze_via(true, |_, i| i.to_vec());
        assert!(!hit1);
        assert!(hit2);
        assert!(CodeRef::same_block(&o1, &o2));
    }

    #[test]
    fn frozen_blocks_share_one_segment_tail() {
        let a = Arena::new();
        a.push(Instr::Fst);
        let c1 = a.freeze();
        a.push(Instr::Snd);
        let c2 = a.freeze();
        assert!(
            CodeSeg::ptr_eq(&c1.seg, &c2.seg),
            "successive freezes append to one segment"
        );
        assert!(CodeSeg::ptr_eq(a.seg(), &c1.seg));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Unit,
            Value::Int(-1),
            Value::pair(Value::Bool(true), Value::Unit),
            Value::Con(0, None),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
