//! Run-time values of the CCAM.

use crate::instr::Instr;
use crate::seg::{BlockId, CodeRef, CodeSeg};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A datatype constructor tag. The MLbox compiler assigns one per
/// constructor; the machine only compares them.
pub type ConTag = u32;

/// A group of mutually recursive closure bodies sharing one captured
/// environment.
#[derive(Debug)]
pub struct RecGroup {
    /// The environment captured at group-creation time.
    pub env: Value,
    /// The segment the bodies live in.
    pub seg: CodeSeg,
    /// One body block per function in the group.
    pub bodies: Rc<Vec<BlockId>>,
}

/// A non-recursive closure `[v : P]`.
#[derive(Debug)]
pub struct Closure {
    /// Captured environment value.
    pub env: Value,
    /// Body code.
    pub body: CodeRef,
}

/// A contiguous environment frame (`EnvMode::Flat`).
///
/// A frame with slots `[s0, …, s_{k-1}]` denotes exactly the pair spine
/// `((…(link, s0)…), s_{k-1})`: `slots[k-1]` is the innermost (most
/// recent) binding and `link` is the environment the frame extends.
/// `Instr::Acc(n)` resolves against a frame by indexing `slots[k-1-n]`
/// when `n < k` — a bounds-checked load instead of an `n`-cell spine
/// walk — and otherwise continues into `link` with `n - k`.
///
/// Frames chain: extending a *shared* frame (one also captured by a
/// closure) must not mutate it, so the machine starts a fresh frame whose
/// `link` is the shared one. Extending a uniquely-owned frame appends to
/// `slots` in place, which is what keeps a straight-line `let` nest in
/// one contiguous allocation.
#[derive(Debug)]
pub struct Frame {
    /// The environment this frame extends (spine tail).
    pub link: Value,
    /// Bindings, oldest first; never empty.
    pub slots: Vec<Value>,
}

/// An arena: a dynamically created code sequence under construction
/// (the paper's `{P}`).
///
/// An arena is a **staging buffer plus a target segment**: `emit`/`lift`/
/// `merge` append instructions to the staging buffer, and `call`/`merge`
/// freeze the buffer into a block at the growable tail of the segment.
/// The machine binds each arena to the segment of the frame that created
/// it, so generated code lands in the same contiguous segment as the
/// generator — the paper's arena model with flat addressing. The
/// implementation shares arenas by reference ([`Rc`]); the compiler
/// threads each arena linearly, so the sharing is unobservable.
///
/// Freezing is cached: the arena remembers the last frozen block (one
/// slot per machine flavor — the optimize × fuse × native lattice)
/// together with the staging length it covered.
/// Instructions are only ever appended, so a length match proves the
/// cached block is still the current contents, and re-freezing a finished
/// generator returns the same block without copying or re-optimizing.
#[derive(Debug)]
pub struct Arena {
    staging: RefCell<Vec<Instr>>,
    seg: CodeSeg,
    cache: RefCell<[Option<(usize, BlockId)>; Self::FLAVOR_SLOTS]>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena {
            staging: RefCell::new(Vec::new()),
            seg: CodeSeg::new(),
            cache: RefCell::new([None; Self::FLAVOR_SLOTS]),
        }
    }
}

impl Arena {
    /// One freeze-cache slot per machine flavor: the optimize × fuse ×
    /// native bit lattice (`Machine::freeze_flavor`).
    pub const FLAVOR_SLOTS: usize = 8;

    /// A fresh empty arena freezing into its own new segment.
    pub fn new() -> Rc<Self> {
        Rc::new(Arena::default())
    }

    /// A fresh empty arena freezing into `seg` (the machine binds arenas
    /// to the executing frame's segment).
    pub fn in_seg(seg: &CodeSeg) -> Rc<Self> {
        Rc::new(Arena {
            staging: RefCell::new(Vec::new()),
            seg: seg.clone(),
            cache: RefCell::new([None; Self::FLAVOR_SLOTS]),
        })
    }

    /// The segment frozen blocks land in.
    pub fn seg(&self) -> &CodeSeg {
        &self.seg
    }

    /// Appends one instruction. Cached freezes of shorter contents stay
    /// valid as snapshots and are invalidated here only in the sense that
    /// the next freeze sees a longer arena and rebuilds.
    pub fn push(&self, i: Instr) {
        self.staging.borrow_mut().push(i);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.staging.borrow().len()
    }

    /// The staging length covered by the cached snapshot in `slot`, if
    /// one exists. A value different from [`Arena::len`] means the next
    /// freeze of that flavor re-renders (a *refreeze*).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn snapshot_len(&self, slot: usize) -> Option<usize> {
        self.cache.borrow()[slot].map(|(len, _)| len)
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.staging.borrow().is_empty()
    }

    /// Freezes the current contents into an executable block at the
    /// segment tail (the arena may continue to grow afterwards; the
    /// frozen block is a snapshot).
    pub fn freeze(&self) -> CodeRef {
        self.freeze_via(false, |_, instrs| instrs.to_vec()).0
    }

    /// Freezes through the cache slot picked by `optimized`, building the
    /// instruction vector with `build` (given the target segment, so the
    /// optimizer can register rewritten blocks) on a miss. Returns the
    /// code and whether it was served from the cache.
    pub fn freeze_via(
        &self,
        optimized: bool,
        build: impl FnOnce(&CodeSeg, &[Instr]) -> Vec<Instr>,
    ) -> (CodeRef, bool) {
        self.freeze_slot(usize::from(optimized), build)
    }

    /// Freezes through an explicit cache slot — one per machine flavor
    /// (`Machine::freeze_flavor`: bit 0 optimize, bit 1 fuse, bit 2
    /// native), so machines running with different flags never serve
    /// each other's rendering of the same arena.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn freeze_slot(
        &self,
        slot: usize,
        build: impl FnOnce(&CodeSeg, &[Instr]) -> Vec<Instr>,
    ) -> (CodeRef, bool) {
        let len = self.staging.borrow().len();
        if let Some((cached_len, block)) = self.cache.borrow()[slot] {
            if cached_len == len {
                return (
                    CodeRef {
                        seg: self.seg.clone(),
                        block,
                    },
                    true,
                );
            }
        }
        let built = build(&self.seg, &self.staging.borrow());
        let block = self.seg.add_block(built);
        self.cache.borrow_mut()[slot] = Some((len, block));
        (
            CodeRef {
                seg: self.seg.clone(),
                block,
            },
            false,
        )
    }
}

/// A CCAM value.
///
/// Values are cheaply cloneable (interior [`Rc`]s) and deliberately
/// **two words** (16 bytes): the machine stack and environment frames
/// are `Vec<Value>`s on the hot path, so every byte of the enum is paid
/// per slot, per push. Keeping it at payload-plus-tag means strings ride
/// behind a thin pointer ([`Rc<String>`], not the fat `Rc<str>`) and the
/// recursive-closure index is a `u32` packed next to the group pointer.
/// `size_of_value_stays_two_words` in the test module pins the bound.
///
/// Tuples are represented as right-nested pairs: `(a, b, c)` is
/// `Pair(a, Pair(b, c))`.
#[derive(Debug, Clone)]
pub enum Value {
    /// The unit value `()`.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (thin pointer; see [`Value::str`]).
    Str(Rc<String>),
    /// A pair (also the environment spine and tuple encoding).
    Pair(Rc<(Value, Value)>),
    /// A contiguous environment frame (`EnvMode::Flat` only; never a
    /// surface value).
    Frame(Rc<Frame>),
    /// A closure `[v : P]`.
    Closure(Rc<Closure>),
    /// A member of a recursive closure group.
    RecClosure {
        /// The shared group.
        group: Rc<RecGroup>,
        /// Which member this value is.
        index: u32,
    },
    /// A datatype constructor application.
    Con(ConTag, Option<Rc<Value>>),
    /// A code arena under construction.
    Arena(Rc<Arena>),
    /// A mutable reference cell.
    Ref(Rc<RefCell<Value>>),
    /// A mutable array.
    Array(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    /// Builds a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Rc::new((a, b)))
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    /// Builds a right-nested tuple from components.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn tuple(parts: Vec<Value>) -> Value {
        let mut it = parts.into_iter().rev();
        let mut acc = it.next().expect("tuple must be non-empty");
        for v in it {
            acc = Value::pair(v, acc);
        }
        acc
    }

    /// Shared frames up to this many slots are extended by copying
    /// (keeping the frame compact for O(1) access) rather than by
    /// chaining a new one-slot frame. Bounds the copy at a constant
    /// while keeping access chains `depth / COMPACT_SLOTS` nodes long —
    /// without it, top-level declarations (whose frame the session
    /// always shares) would degenerate into a one-slot-per-node spine.
    const COMPACT_SLOTS: usize = 16;

    /// A fresh frame's slot vector, over-allocated a little: most scopes
    /// bind more than once, and slack here converts the follow-up
    /// in-place extensions into plain pushes instead of reallocations.
    fn first_slots(binding: Value) -> Vec<Value> {
        let mut slots = Vec::with_capacity(4);
        slots.push(binding);
        slots
    }

    /// Extends an environment with one binding — the dynamics of
    /// `Instr::EnvCons`. A uniquely-owned frame grows in place; a shared
    /// frame (captured by some closure or the session) is either copied
    /// while small (see [`Self::COMPACT_SLOTS`]) or linked to from a
    /// fresh frame; any other environment value becomes the `link` of a
    /// first frame. Frames are immutable as values, so every branch
    /// denotes the same extended environment.
    #[inline]
    pub fn env_extend(env: Value, binding: Value) -> Value {
        match env {
            Value::Frame(mut frame) => {
                if let Some(f) = Rc::get_mut(&mut frame) {
                    f.slots.push(binding);
                    Value::Frame(frame)
                } else if frame.slots.len() < Self::COMPACT_SLOTS {
                    let mut slots = Vec::with_capacity(frame.slots.len() + 4);
                    slots.extend(frame.slots.iter().cloned());
                    slots.push(binding);
                    Value::Frame(Rc::new(Frame {
                        link: frame.link.clone(),
                        slots,
                    }))
                } else {
                    Value::Frame(Rc::new(Frame {
                        link: Value::Frame(frame),
                        slots: Self::first_slots(binding),
                    }))
                }
            }
            other => Value::Frame(Rc::new(Frame {
                link: other,
                slots: Self::first_slots(binding),
            })),
        }
    }

    /// Resolves `Acc(n)` against a mixed pair/frame environment spine:
    /// `n` applications of `fst` followed by `snd`. Frames answer in one
    /// bounds-checked index per frame node. `None` when the spine runs
    /// out before the access lands.
    #[inline]
    pub fn env_acc(&self, mut n: usize) -> Option<Value> {
        let mut cur = self;
        loop {
            match cur {
                Value::Pair(p) => {
                    if n == 0 {
                        return Some(p.1.clone());
                    }
                    n -= 1;
                    cur = &p.0;
                }
                Value::Frame(f) => {
                    let k = f.slots.len();
                    if n < k {
                        return Some(f.slots[k - 1 - n].clone());
                    }
                    n -= k;
                    cur = &f.link;
                }
                _ => return None,
            }
        }
    }

    /// `fst` of an environment node: for a pair the left half, for a
    /// frame the frame minus its innermost slot (the `link` when only one
    /// slot remains). `None` on non-environment values.
    #[inline]
    pub fn env_fst(&self) -> Option<Value> {
        match self {
            Value::Pair(p) => Some(p.0.clone()),
            Value::Frame(f) => Some(match f.slots.len() {
                0 | 1 => f.link.clone(),
                k => Value::Frame(Rc::new(Frame {
                    link: f.link.clone(),
                    slots: f.slots[..k - 1].to_vec(),
                })),
            }),
            _ => None,
        }
    }

    /// `snd` of an environment node: for a pair the right half, for a
    /// frame the innermost slot. `None` on non-environment values.
    #[inline]
    pub fn env_snd(&self) -> Option<Value> {
        match self {
            Value::Pair(p) => Some(p.1.clone()),
            Value::Frame(f) => f.slots.last().cloned(),
            _ => None,
        }
    }

    /// Structural equality as used by the `=` primitive: defined for
    /// unit, integers, booleans, strings, pairs, and constructors;
    /// reference cells and arrays compare by identity. Returns `None` for
    /// closures and arenas (equality is not defined on them).
    ///
    /// Iterative (explicit worklist): the `=` primitive is reachable from
    /// user programs with arbitrarily deep spines, and a recursive
    /// traversal overflows the Rust stack around a few tens of thousands
    /// of cells.
    pub fn structural_eq(&self, other: &Value) -> Option<bool> {
        let mut work: Vec<(&Value, &Value)> = vec![(self, other)];
        while let Some((a, b)) = work.pop() {
            match (a, b) {
                (Value::Unit, Value::Unit) => {}
                (Value::Int(a), Value::Int(b)) => {
                    if a != b {
                        return Some(false);
                    }
                }
                (Value::Bool(a), Value::Bool(b)) => {
                    if a != b {
                        return Some(false);
                    }
                }
                (Value::Str(a), Value::Str(b)) => {
                    if a != b {
                        return Some(false);
                    }
                }
                (Value::Pair(a), Value::Pair(b)) => {
                    if !Rc::ptr_eq(a, b) {
                        // Left half on top of the stack: preserves the
                        // recursive version's left-to-right short-circuit.
                        work.push((&a.1, &b.1));
                        work.push((&a.0, &b.0));
                    }
                }
                (Value::Frame(a), Value::Frame(b)) => {
                    // Frames are an internal environment representation;
                    // `=` never sees one from a well-typed program. Equal
                    // chunking compares structurally, anything else is
                    // undefined (like closures).
                    if !Rc::ptr_eq(a, b) {
                        if a.slots.len() != b.slots.len() {
                            return None;
                        }
                        work.push((&a.link, &b.link));
                        for (x, y) in a.slots.iter().zip(b.slots.iter()) {
                            work.push((x, y));
                        }
                    }
                }
                (Value::Con(ta, pa), Value::Con(tb, pb)) => {
                    if ta != tb {
                        return Some(false);
                    }
                    match (pa, pb) {
                        (None, None) => {}
                        (Some(a), Some(b)) => work.push((a, b)),
                        _ => return Some(false),
                    }
                }
                (Value::Ref(a), Value::Ref(b)) => {
                    if !Rc::ptr_eq(a, b) {
                        return Some(false);
                    }
                }
                (Value::Array(a), Value::Array(b)) => {
                    if !Rc::ptr_eq(a, b) {
                        return Some(false);
                    }
                }
                _ => return None,
            }
        }
        Some(true)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(p) => write!(f, "({}, {})", p.0, p.1),
            Value::Frame(fr) => {
                // Rendered exactly as the pair spine the frame denotes,
                // so both environment representations print alike.
                for _ in &fr.slots {
                    f.write_str("(")?;
                }
                write!(f, "{}", fr.link)?;
                for s in &fr.slots {
                    write!(f, ", {s})")?;
                }
                Ok(())
            }
            Value::Closure(_) => f.write_str("<fn>"),
            Value::RecClosure { .. } => f.write_str("<fn rec>"),
            Value::Con(tag, None) => write!(f, "con{tag}"),
            Value::Con(tag, Some(v)) => write!(f, "con{tag}({v})"),
            Value::Arena(a) => write!(f, "<arena:{}>", a.len()),
            Value::Ref(v) => write!(f, "ref {}", v.borrow()),
            Value::Array(a) => {
                f.write_str("[|")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("|]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_of_value_stays_two_words() {
        // The machine stack and flat environment frames are Vec<Value>;
        // every variant must fit in payload + tag. Growing this (e.g. by
        // widening RecClosure's index or fattening Str back to Rc<str>)
        // is a hot-path regression, not a refactor.
        assert!(
            std::mem::size_of::<Value>() <= 16,
            "Value grew past two words: {} bytes",
            std::mem::size_of::<Value>()
        );
    }

    #[test]
    fn tuple_is_right_nested() {
        let t = Value::tuple(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        match t {
            Value::Pair(p) => {
                assert!(matches!(p.0, Value::Int(1)));
                assert!(matches!(&p.1, Value::Pair(q) if matches!(q.0, Value::Int(2))));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn structural_eq_on_cons() {
        let a = Value::Con(3, Some(Rc::new(Value::Int(1))));
        let b = Value::Con(3, Some(Rc::new(Value::Int(1))));
        let c = Value::Con(4, Some(Rc::new(Value::Int(1))));
        assert_eq!(a.structural_eq(&b), Some(true));
        assert_eq!(a.structural_eq(&c), Some(false));
    }

    #[test]
    fn refs_compare_by_identity() {
        let r1 = Value::Ref(Rc::new(RefCell::new(Value::Int(1))));
        let r2 = Value::Ref(Rc::new(RefCell::new(Value::Int(1))));
        assert_eq!(r1.structural_eq(&r1.clone()), Some(true));
        assert_eq!(r1.structural_eq(&r2), Some(false));
    }

    #[test]
    fn arena_grows_and_freezes() {
        let a = Arena::new();
        assert!(a.is_empty());
        a.push(Instr::Fst);
        a.push(Instr::Snd);
        let code = a.freeze();
        assert_eq!(code.len(), 2);
        a.push(Instr::Id);
        assert_eq!(a.len(), 3);
        assert_eq!(code.len(), 2, "frozen snapshot is immutable");
    }

    #[test]
    fn freeze_is_cached_until_growth() {
        let a = Arena::new();
        a.push(Instr::Fst);
        let c1 = a.freeze();
        let c2 = a.freeze();
        assert!(
            CodeRef::same_block(&c1, &c2),
            "repeated freeze reuses the snapshot"
        );
        a.push(Instr::Snd);
        let c3 = a.freeze();
        assert!(
            !CodeRef::same_block(&c1, &c3),
            "growth invalidates the cache"
        );
        assert_eq!(c3.len(), 2);
        // The optimized slot is cached independently of the plain one.
        let (o1, hit1) = a.freeze_via(true, |_, i| i.to_vec());
        let (o2, hit2) = a.freeze_via(true, |_, i| i.to_vec());
        assert!(!hit1);
        assert!(hit2);
        assert!(CodeRef::same_block(&o1, &o2));
    }

    #[test]
    fn frozen_blocks_share_one_segment_tail() {
        let a = Arena::new();
        a.push(Instr::Fst);
        let c1 = a.freeze();
        a.push(Instr::Snd);
        let c2 = a.freeze();
        assert!(
            CodeSeg::ptr_eq(&c1.seg, &c2.seg),
            "successive freezes append to one segment"
        );
        assert!(CodeSeg::ptr_eq(a.seg(), &c1.seg));
    }

    #[test]
    fn structural_eq_is_iterative_on_deep_spines() {
        // Regression: the recursive version overflowed the stack on the
        // deep environments `table1 deep-env` builds. 100k cells must
        // compare without recursing on the Rust stack. (The spines are
        // torn down iteratively too, to keep Drop off the deep path.)
        let depth = 100_000;
        let build = || {
            let mut v = Value::Unit;
            for i in 0..depth {
                v = Value::pair(v, Value::Int(i));
            }
            v
        };
        let (a, b) = (build(), build());
        assert_eq!(a.structural_eq(&b), Some(true));
        let c = Value::pair(a.clone(), Value::Int(-1));
        let d = Value::pair(b.clone(), Value::Int(-2));
        assert_eq!(c.structural_eq(&d), Some(false));
        for mut v in [a, b, c, d] {
            while let Value::Pair(p) = v {
                match Rc::try_unwrap(p) {
                    Ok((fst, _)) => v = fst,
                    Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn frames_denote_their_pair_spine() {
        // ((((), 1), 2), 3) as one frame.
        let env = Value::env_extend(
            Value::env_extend(Value::env_extend(Value::Unit, Value::Int(1)), Value::Int(2)),
            Value::Int(3),
        );
        match &env {
            Value::Frame(f) => assert_eq!(f.slots.len(), 3, "unique frames grow in place"),
            other => panic!("expected frame, got {other}"),
        }
        // Acc(n) agrees with the spine reading.
        assert!(matches!(env.env_acc(0), Some(Value::Int(3))));
        assert!(matches!(env.env_acc(1), Some(Value::Int(2))));
        assert!(matches!(env.env_acc(2), Some(Value::Int(1))));
        assert!(env.env_acc(3).is_none(), "unit link ends the spine");
        // fst/snd agree too.
        assert!(matches!(env.env_snd(), Some(Value::Int(3))));
        let rest = env.env_fst().expect("fst");
        assert!(matches!(rest.env_snd(), Some(Value::Int(2))));
        // Display matches the equivalent pair spine.
        let spine = Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
            Value::Int(3),
        );
        assert_eq!(env.to_string(), spine.to_string());
        // Extending a shared frame must not mutate it.
        let shared = env.clone();
        let extended = Value::env_extend(env, Value::Int(4));
        assert!(matches!(shared.env_acc(0), Some(Value::Int(3))));
        assert!(matches!(extended.env_acc(0), Some(Value::Int(4))));
        assert!(matches!(extended.env_acc(3), Some(Value::Int(1))));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Unit,
            Value::Int(-1),
            Value::pair(Value::Bool(true), Value::Unit),
            Value::Con(0, None),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
