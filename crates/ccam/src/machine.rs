//! The CCAM simulator: configurations `⟨S, P⟩` and the transition relation
//! of Figure 3 (plus the documented extensions).
//!
//! Code is executed from flat [`CodeSeg`] segments: a control-stack frame
//! is a `(segment, block, pc)` triple, and the dispatch loop walks the
//! block's contiguous instruction range directly — one borrow of the
//! segment per frame activation, **zero reference-count traffic per
//! instruction**. Instructions that transfer control or append frozen
//! blocks to a segment (application, branching, `call`, the merge family)
//! leave the fast path; everything else executes inline over the borrowed
//! slice. One executed instruction is one **reduction step** — the unit
//! reported in the paper's Table 1.

use crate::instr::{Instr, PrimOp, SwitchArm, SwitchTable, OPCODE_COUNT, OPCODE_NAMES};
use crate::seg::{BlockId, CodeRef, CodeSeg};
use crate::value::{Arena, Closure, RecGroup, Value};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// An instruction needed more stack entries than were present.
    StackUnderflow {
        /// The instruction's mnemonic.
        instr: &'static str,
    },
    /// The top of the stack had the wrong shape for the instruction.
    TypeMismatch {
        /// The instruction's mnemonic.
        instr: &'static str,
        /// What the instruction needed.
        expected: &'static str,
        /// A rendering of what it found.
        found: String,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// A `fail` instruction ran (inexhaustive match).
    Fail(String),
    /// `switch` found no matching arm and no default.
    NoMatchingArm {
        /// The scrutinee's tag.
        tag: u32,
    },
    /// The step budget was exhausted.
    OutOfFuel {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// `=` was applied to values without structural equality (closures,
    /// arenas).
    EqualityUndefined,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::StackUnderflow { instr } => {
                write!(f, "stack underflow executing `{instr}`")
            }
            MachineError::TypeMismatch {
                instr,
                expected,
                found,
            } => write!(f, "`{instr}` expected {expected}, found {found}"),
            MachineError::DivideByZero => f.write_str("integer division by zero"),
            MachineError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            MachineError::Fail(m) => write!(f, "failure: {m}"),
            MachineError::NoMatchingArm { tag } => {
                write!(f, "no switch arm matches constructor tag {tag}")
            }
            MachineError::OutOfFuel { fuel } => {
                write!(f, "reduction budget of {fuel} steps exhausted")
            }
            MachineError::EqualityUndefined => {
                f.write_str("equality is not defined on functions or code")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// SML `div`: floor division, rounding toward negative infinity
/// (`~7 div 2 = ~4`), unlike Rust's truncating `/`. The divisor must be
/// nonzero; `i64::MIN div -1` wraps like the other arithmetic primitives.
pub fn floor_div(x: i64, y: i64) -> i64 {
    let q = x.wrapping_div(y);
    if x.wrapping_rem(y) != 0 && (x < 0) != (y < 0) {
        q.wrapping_sub(1)
    } else {
        q
    }
}

/// SML `mod`: the remainder matching [`floor_div`], taking the divisor's
/// sign (`~7 mod 2 = 1`), unlike Rust's truncating `%`. The divisor must
/// be nonzero.
pub fn floor_mod(x: i64, y: i64) -> i64 {
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        r.wrapping_add(y)
    } else {
        r
    }
}

/// Execution statistics, the paper's measurement surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Reduction steps (instructions executed) — Table 1's unit.
    pub steps: u64,
    /// Instructions appended to arenas (`emit`, `lift`, and the merge
    /// family each count the instructions they append).
    pub emitted: u64,
    /// Arenas created by `arena`.
    pub arenas: u64,
    /// `call` transfers into generated code.
    pub calls: u64,
    /// Arena freezes that materialized code (cache misses). Each miss
    /// copies — and, under `set_optimize`, re-optimizes — the arena.
    pub freezes: u64,
    /// Arena freezes served from the cached snapshot.
    pub freeze_hits: u64,
    /// Reduction steps executed by fused superinstructions (the fusion
    /// layer of DESIGN.md §11). Each fused dispatch does the work of two
    /// or more unfused steps, so this meters how much of a run the fusion
    /// pass actually covered.
    pub fused: u64,
    /// High-water mark of the value stack.
    pub max_stack: usize,
    /// Per-opcode executed-step counts, when enabled by
    /// [`Machine::set_count_opcodes`].
    pub opcodes: Option<OpcodeCounts>,
}

impl Stats {
    /// The change since an earlier snapshot of the same machine's stats
    /// (`max_stack` is a high-water mark, not a delta, and is carried
    /// over; per-opcode counts are differenced when both ends have them).
    #[must_use]
    pub fn delta_since(&self, before: &Stats) -> Stats {
        Stats {
            steps: self.steps - before.steps,
            emitted: self.emitted - before.emitted,
            arenas: self.arenas - before.arenas,
            calls: self.calls - before.calls,
            freezes: self.freezes - before.freezes,
            freeze_hits: self.freeze_hits - before.freeze_hits,
            fused: self.fused - before.fused,
            max_stack: self.max_stack,
            opcodes: match (&self.opcodes, &before.opcodes) {
                (Some(after), Some(before)) => Some(after.delta_since(before)),
                (after, _) => *after,
            },
        }
    }
}

/// Executed-step counts per opcode, indexed by [`Instr::opcode`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpcodeCounts(pub [u64; OPCODE_COUNT]);

impl OpcodeCounts {
    /// The count for one mnemonic (0 for unknown mnemonics).
    pub fn get(&self, mnemonic: &str) -> u64 {
        OPCODE_NAMES
            .iter()
            .position(|&n| n == mnemonic)
            .map_or(0, |i| self.0[i])
    }

    /// `(mnemonic, count)` pairs for every opcode with a nonzero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        OPCODE_NAMES
            .iter()
            .zip(self.0.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&n, &c)| (n, c))
    }

    fn delta_since(&self, before: &OpcodeCounts) -> OpcodeCounts {
        let mut out = [0u64; OPCODE_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i] - before.0[i];
        }
        OpcodeCounts(out)
    }
}

/// One control-stack frame: a block of a segment plus the next
/// instruction index within it.
#[derive(Debug, Clone)]
struct Frame {
    seg: CodeSeg,
    block: BlockId,
    pc: usize,
}

/// The CCAM.
///
/// A machine owns mutable execution state (value stack, control stack,
/// statistics, print-output buffer) and can run many programs in
/// sequence; statistics accumulate until [`Machine::reset_stats`].
///
/// # Examples
///
/// ```
/// use ccam::instr::{Instr, PrimOp};
/// use ccam::machine::Machine;
/// use ccam::seg::CodeSeg;
/// use ccam::value::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Compute (3, 4) |-> 3 + 4.
/// let seg = CodeSeg::new();
/// let code = seg.entry(vec![Instr::Prim(PrimOp::Add)]);
/// let mut m = Machine::new();
/// let out = m.run(code, Value::pair(Value::Int(3), Value::Int(4)))?;
/// assert!(matches!(out, Value::Int(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    stack: Vec<Value>,
    control: Vec<Frame>,
    stats: Stats,
    fuel: Option<u64>,
    /// Fuel units spent by the current `run` (the budget is per run, not
    /// the machine's lifetime total). Distinct from `stats.steps`: a
    /// fused superinstruction counts one *step* but charges fuel for
    /// every component it replaced, so a fuel budget bounds the same
    /// amount of work in every execution mode (`indexed_env`, `fuse`,
    /// flat environments) — fusion can't be used to smuggle extra work
    /// past a per-run limit.
    fuel_spent: u64,
    output: String,
    trace: Option<Trace>,
    optimize: bool,
    fuse: bool,
    /// Dynamic opcode-pair frequency profile, when enabled by
    /// [`Machine::set_profile_pairs`]. Boxed: the table is
    /// `OPCODE_COUNT²` counters, too large to live inline in every
    /// machine.
    pair_profile: Option<Box<PairCounts>>,
}

/// An opcode-pair frequency table: `counts[a][b]` is how many times
/// opcode `b` executed immediately after opcode `a` within one
/// straight-line dispatch run (control transfers reset the chain). This
/// is the dynamic profile that justifies the fused opcodes of the
/// superinstruction layer (DESIGN.md §11).
pub type PairCounts = [[u64; OPCODE_COUNT]; OPCODE_COUNT];

/// One recorded execution position: which block of the running segment,
/// the instruction index within it, and the instruction's mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Block index of the executing frame.
    pub block: u32,
    /// Instruction index within the block.
    pub pc: usize,
    /// The executed instruction's mnemonic.
    pub mnemonic: &'static str,
}

/// A bounded execution trace: the `(block, pc, mnemonic)` of the first
/// `limit` executed instructions.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Executed instructions, in order.
    pub entries: Vec<TraceEntry>,
    /// Maximum number of entries recorded.
    pub limit: usize,
}

impl Trace {
    /// Just the mnemonics, in execution order.
    pub fn mnemonics(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.mnemonic).collect()
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// A fresh machine with no step budget.
    pub fn new() -> Self {
        Machine {
            stack: Vec::new(),
            control: Vec::new(),
            stats: Stats::default(),
            fuel: None,
            fuel_spent: 0,
            output: String::new(),
            trace: None,
            optimize: false,
            fuse: false,
            pair_profile: None,
        }
    }

    /// A machine that aborts with [`MachineError::OutOfFuel`] after
    /// `fuel` reduction steps.
    pub fn with_fuel(fuel: u64) -> Self {
        let mut m = Machine::new();
        m.fuel = Some(fuel);
        m
    }

    /// Enables emission-time peephole optimization (§4.2's "more
    /// sophisticated specialization system"): arenas are optimized by
    /// [`crate::opt::peephole`] when frozen by `call` and the merge
    /// family — constant folding, `+ 0`/`* 1` elimination, `* 0`
    /// absorption, constant-branch folding.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Whether emission-time optimization is enabled.
    pub fn optimize(&self) -> bool {
        self.optimize
    }

    /// Enables superinstruction fusion (DESIGN.md §11): arenas are
    /// rewritten by [`crate::opt::fuse`] when frozen, so generated code
    /// dispatches fused opcodes. Composes with [`Machine::set_optimize`]
    /// (peephole first, then fusion); statically compiled code is fused
    /// by the session layer when the same flag is set there.
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on;
    }

    /// Whether superinstruction fusion is enabled.
    pub fn fuse(&self) -> bool {
        self.fuse
    }

    /// Enables or disables dynamic opcode-pair profiling (surfaced
    /// through [`Machine::pair_profile`]). Enabling zeroes any previous
    /// counts.
    pub fn set_profile_pairs(&mut self, on: bool) {
        self.pair_profile = on.then(|| Box::new([[0u64; OPCODE_COUNT]; OPCODE_COUNT]));
    }

    /// The opcode-pair frequency table, if profiling is enabled.
    pub fn pair_profile(&self) -> Option<&PairCounts> {
        self.pair_profile.as_deref()
    }

    /// Freezes an arena, applying the optimizer when enabled. Served from
    /// the arena's snapshot cache whenever the arena has not grown since
    /// the previous freeze of the same flavor, so specialize-once /
    /// run-many programs pay for copying and optimization once.
    fn freeze(&mut self, arena: &Arena) -> CodeRef {
        // One cache slot per (optimize, fuse) flavor, so machines with
        // different flags sharing an arena never serve each other's
        // rendering.
        let slot = usize::from(self.optimize) + 2 * usize::from(self.fuse);
        let (code, hit) = match (self.optimize, self.fuse) {
            (false, false) => arena.freeze_slot(slot, |_, instrs| instrs.to_vec()),
            (true, false) => arena.freeze_slot(slot, crate::opt::peephole),
            (false, true) => arena.freeze_slot(slot, crate::opt::fuse),
            (true, true) => arena.freeze_slot(slot, |seg, instrs| {
                let optimized = crate::opt::peephole(seg, instrs);
                crate::opt::fuse(seg, &optimized)
            }),
        };
        if hit {
            self.stats.freeze_hits += 1;
        } else {
            self.stats.freezes += 1;
        }
        code
    }

    /// Fuel units one instruction charges: the number of unfused
    /// pair-spine reduction steps it stands for. `Acc(n)` replaces
    /// `fst^n; snd`, each fused superinstruction replaces the pair it
    /// covers, and `env_cons` replaces exactly one `cons`. Keeping fuel
    /// in these units makes a fuel budget exhaust at the same point in
    /// every execution mode — the cost model the budget was set against
    /// is the paper's, not whichever dispatch encoding happens to run.
    fn fuel_cost(i: &Instr) -> u64 {
        match i {
            Instr::Acc(n) => *n as u64 + 1,
            Instr::PushAcc(n) | Instr::AccApp(n) => *n as u64 + 2,
            Instr::QuoteCons(_) | Instr::SwapCons | Instr::ConsApp | Instr::PushQuote(_) => 2,
            _ => 1,
        }
    }

    /// Records the `(block, pc, mnemonic)` of the first `limit` executed
    /// instructions (for debugging and tests). Replaces any existing
    /// trace.
    pub fn set_trace(&mut self, limit: usize) {
        self.trace = Some(Trace {
            entries: Vec::new(),
            limit,
        });
    }

    /// The current trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Enables or disables per-opcode step counting (surfaced through
    /// [`Stats::opcodes`]). Enabling zeroes any previous counts.
    pub fn set_count_opcodes(&mut self, on: bool) {
        self.stats.opcodes = on.then(OpcodeCounts::default);
    }

    /// Clears accumulated statistics (the output buffer is kept; opcode
    /// counting stays enabled if it was).
    pub fn reset_stats(&mut self) {
        let opcodes = self.stats.opcodes.map(|_| OpcodeCounts::default());
        self.stats = Stats {
            opcodes,
            ..Stats::default()
        };
        self.fuel_spent = 0;
    }

    /// Everything printed by `print` so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Clears the output buffer.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Runs `code` with `input` as the initial top of stack, returning the
    /// final top of stack.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on dynamic failure; the machine's stack
    /// and control are cleared, but statistics and output are kept.
    pub fn run(&mut self, code: CodeRef, input: Value) -> Result<Value, MachineError> {
        self.stack.clear();
        self.control.clear();
        self.stack.push(input);
        self.control.push(Frame {
            seg: code.seg,
            block: code.block,
            pc: 0,
        });
        self.fuel_spent = 0;
        let result = self.steps_loop();
        if result.is_err() {
            self.stack.clear();
            self.control.clear();
        }
        result
    }

    fn steps_loop(&mut self) -> Result<Value, MachineError> {
        'frames: loop {
            // Resolve the top frame once: clone the segment handle (one
            // Rc bump per frame activation, not per step), look up the
            // block's range, and borrow the segment's instruction vector
            // for the whole dispatch run.
            let (seg, block, start, len, mut pc) = match self.control.last() {
                None => {
                    return self
                        .stack
                        .pop()
                        .ok_or(MachineError::StackUnderflow { instr: "halt" });
                }
                Some(frame) => {
                    let (start, len) = frame.seg.block_bounds(frame.block);
                    (frame.seg.clone(), frame.block, start, len, frame.pc)
                }
            };
            let instrs = seg.borrow_instrs();
            // Opcode-pair chain for the dynamic profile: adjacency is
            // only meaningful within one straight-line run, so the chain
            // restarts at every frame activation.
            let mut prev_op: Option<usize> = None;
            while pc < len {
                let instr = &instrs[start + pc];
                pc += 1;
                // Account.
                if let Some(hist) = &mut self.pair_profile {
                    let op = instr.opcode();
                    if let Some(p) = prev_op {
                        hist[p][op] += 1;
                    }
                    prev_op = Some(op);
                }
                if let Some(trace) = &mut self.trace {
                    if trace.entries.len() < trace.limit {
                        trace.entries.push(TraceEntry {
                            block: block.0,
                            pc: pc - 1,
                            mnemonic: instr.mnemonic(),
                        });
                    }
                }
                self.stats.steps += 1;
                if let Some(counts) = &mut self.stats.opcodes {
                    counts.0[instr.opcode()] += 1;
                }
                if let Some(fuel) = self.fuel {
                    self.fuel_spent += Self::fuel_cost(instr);
                    if self.fuel_spent > fuel {
                        return Err(MachineError::OutOfFuel { fuel });
                    }
                }
                match instr {
                    // Straight-line instructions execute inline over the
                    // borrowed slice. None of these appends to a segment's
                    // instruction vector (`emit`/`lift` push to the
                    // arena's *staging* buffer) or touches the control
                    // stack, so the borrow stays valid.
                    Instr::Id => {}
                    Instr::Fst => {
                        let v = self.pop("fst")?;
                        match v {
                            Value::Pair(p) => {
                                let a = match Rc::try_unwrap(p) {
                                    Ok(pair) => pair.0,
                                    Err(p) => p.0.clone(),
                                };
                                self.stack.push(a);
                            }
                            v @ Value::Frame(_) => {
                                let a = v.env_fst().expect("frame has a first component");
                                self.stack.push(a);
                            }
                            other => return Err(Self::mismatch("fst", "a pair", &other)),
                        }
                    }
                    Instr::Snd => {
                        let v = self.pop("snd")?;
                        match v {
                            Value::Pair(p) => {
                                let b = match Rc::try_unwrap(p) {
                                    Ok(pair) => pair.1,
                                    Err(p) => p.1.clone(),
                                };
                                self.stack.push(b);
                            }
                            v @ Value::Frame(_) => {
                                let b = v.env_snd().expect("frame has a second component");
                                self.stack.push(b);
                            }
                            other => return Err(Self::mismatch("snd", "a pair", &other)),
                        }
                    }
                    Instr::Acc(n) => {
                        // Fused `fst^n; snd`: one dispatch, one reduction
                        // step, and no intermediate spine values pushed.
                        // Pair nodes are walked one link per cell; frame
                        // nodes (flat environments) answer with a single
                        // bounds-checked index.
                        let v = self.pop("acc")?;
                        let out = v
                            .env_acc(*n)
                            .ok_or_else(|| Self::mismatch("acc", "an environment spine", &v))?;
                        self.stack.push(out);
                    }
                    Instr::Push => {
                        let v = self.top("push")?.clone();
                        self.stack.push(v);
                    }
                    Instr::Swap => {
                        let n = self.stack.len();
                        if n < 2 {
                            return Err(MachineError::StackUnderflow { instr: "swap" });
                        }
                        self.stack.swap(n - 1, n - 2);
                    }
                    Instr::ConsPair => {
                        let v = self.pop("cons")?;
                        let u = self.pop("cons")?;
                        self.stack.push(Value::pair(u, v));
                    }
                    Instr::Quote(v) => {
                        let _ = self.pop("quote")?;
                        self.stack.push(v.clone());
                    }
                    Instr::Cur(body) => {
                        let env = self.pop("cur")?;
                        self.stack.push(Value::Closure(Rc::new(Closure {
                            env,
                            body: CodeRef {
                                seg: seg.clone(),
                                block: *body,
                            },
                        })));
                    }
                    Instr::Emit(i) => {
                        let (v, arena) = self.pop_gen_state("emit")?;
                        // Block operands are relative to the executing
                        // segment; rewrite them if the arena freezes into
                        // a different one (identity in the common case).
                        arena.push(arena.seg().import_instr(&seg, i));
                        self.stats.emitted += 1;
                        self.stack.push(Value::pair(v, Value::Arena(arena)));
                    }
                    Instr::LiftV => {
                        let (v, arena) = self.pop_gen_state("lift")?;
                        arena.push(Instr::Quote(v.clone()));
                        self.stats.emitted += 1;
                        self.stack.push(Value::pair(v, Value::Arena(arena)));
                    }
                    Instr::NewArena => {
                        let _ = self.pop("arena")?;
                        self.stats.arenas += 1;
                        // Bind the arena to the executing segment: frozen
                        // code lands in the segment's growable tail.
                        self.stack.push(Value::Arena(Arena::in_seg(&seg)));
                    }
                    Instr::RecClos(bodies) => {
                        let env = self.pop("recclos")?;
                        let group = Rc::new(RecGroup {
                            env,
                            seg: seg.clone(),
                            bodies: bodies.clone(),
                        });
                        let mut acc = group.env.clone();
                        for index in 0..bodies.len() {
                            acc = Value::pair(
                                acc,
                                Value::RecClosure {
                                    group: group.clone(),
                                    index,
                                },
                            );
                        }
                        self.stack.push(acc);
                    }
                    Instr::Pack(tag) => {
                        let v = self.pop("pack")?;
                        self.stack.push(Value::Con(*tag, Some(Rc::new(v))));
                    }
                    Instr::Prim(op) => self.prim(*op)?,
                    Instr::Fail(msg) => return Err(MachineError::Fail(msg.to_string())),
                    // Fused superinstructions (straight-line): each does
                    // the work of the opcode pair it replaced in one
                    // reduction step (DESIGN.md §11).
                    Instr::PushAcc(n) => {
                        // `push; acc n` without the duplicate: peek the
                        // top, resolve the access, push only the result.
                        let out = {
                            let v = self
                                .stack
                                .last()
                                .ok_or(MachineError::StackUnderflow { instr: "push_acc" })?;
                            v.env_acc(*n).ok_or_else(|| {
                                Self::mismatch("push_acc", "an environment spine", v)
                            })?
                        };
                        self.stats.fused += 1;
                        self.stack.push(out);
                    }
                    Instr::QuoteCons(v) => {
                        // `quote v; cons`: the quoted constant replaces
                        // the top, then pairs with the value beneath.
                        let _ = self.pop("quote_cons")?;
                        let u = self.pop("quote_cons")?;
                        self.stats.fused += 1;
                        self.stack.push(Value::pair(u, v.clone()));
                    }
                    Instr::SwapCons => {
                        // `swap; cons`: a pair with the operands in stack
                        // order (top first) instead of reversed.
                        let t = self.pop("swap_cons")?;
                        let u = self.pop("swap_cons")?;
                        self.stats.fused += 1;
                        self.stack.push(Value::pair(t, u));
                    }
                    Instr::PushQuote(v) => {
                        // `push; quote v`: keep the top, push the
                        // constant above it. A lone `push` underflows on
                        // an empty stack, so the fused form must too.
                        if self.stack.is_empty() {
                            return Err(MachineError::StackUnderflow {
                                instr: "push_quote",
                            });
                        }
                        self.stats.fused += 1;
                        self.stack.push(v.clone());
                    }
                    Instr::EnvCons => {
                        // Flat-mode environment extension: like `cons`,
                        // but the result is a contiguous frame — appended
                        // in place when the environment is uniquely
                        // owned, chained otherwise.
                        let v = self.pop("env_cons")?;
                        let env = self.pop("env_cons")?;
                        self.stack.push(Value::env_extend(env, v));
                    }
                    // Control transfers and segment mutators: these push
                    // frames or freeze arena contents into a segment, so
                    // they must not run under the instruction borrow.
                    // Clone the single instruction, release the borrow,
                    // save the pc, and re-resolve the top frame after.
                    Instr::App
                    | Instr::Branch(_, _)
                    | Instr::Switch(_)
                    | Instr::Call
                    | Instr::Merge
                    | Instr::MergeBranch
                    | Instr::MergeSwitch(_)
                    | Instr::MergeRec(_)
                    | Instr::ConsApp
                    | Instr::AccApp(_) => {
                        let owned = instr.clone();
                        drop(instrs);
                        self.control.last_mut().expect("frame present mid-block").pc = pc;
                        self.execute_transfer(&seg, owned)?;
                        if self.stack.len() > self.stats.max_stack {
                            self.stats.max_stack = self.stack.len();
                        }
                        continue 'frames;
                    }
                }
                if self.stack.len() > self.stats.max_stack {
                    self.stats.max_stack = self.stack.len();
                }
            }
            // Block exhausted: return to the caller's frame.
            drop(instrs);
            self.control.pop();
        }
    }

    fn top(&mut self, instr: &'static str) -> Result<&mut Value, MachineError> {
        self.stack
            .last_mut()
            .ok_or(MachineError::StackUnderflow { instr })
    }

    fn pop(&mut self, instr: &'static str) -> Result<Value, MachineError> {
        self.stack
            .pop()
            .ok_or(MachineError::StackUnderflow { instr })
    }

    fn mismatch(instr: &'static str, expected: &'static str, found: &Value) -> MachineError {
        MachineError::TypeMismatch {
            instr,
            expected,
            found: found.to_string(),
        }
    }

    fn pop_pair(&mut self, instr: &'static str) -> Result<(Value, Value), MachineError> {
        let v = self.pop(instr)?;
        match v {
            Value::Pair(p) => match Rc::try_unwrap(p) {
                Ok(pair) => Ok(pair),
                Err(p) => Ok((p.0.clone(), p.1.clone())),
            },
            other => Err(Self::mismatch(instr, "a pair", &other)),
        }
    }

    /// Destructures `(v, arena)` from the top of stack, leaving nothing.
    fn pop_gen_state(&mut self, instr: &'static str) -> Result<(Value, Rc<Arena>), MachineError> {
        let (v, a) = self.pop_pair(instr)?;
        match a {
            Value::Arena(a) => Ok((v, a)),
            other => Err(Self::mismatch(instr, "(value, arena)", &other)),
        }
    }

    fn enter(&mut self, code: CodeRef) {
        self.control.push(Frame {
            seg: code.seg,
            block: code.block,
            pc: 0,
        });
    }

    /// Executes one control-transfer or segment-mutating instruction.
    /// `seg` is the segment of the frame the instruction came from (block
    /// operands are relative to it).
    fn execute_transfer(&mut self, seg: &CodeSeg, instr: Instr) -> Result<(), MachineError> {
        match instr {
            Instr::App => self.apply()?,
            Instr::ConsApp => {
                // Fused `cons; app`: apply without materializing the
                // (closure, argument) pair on the stack.
                let arg = self.pop("cons_app")?;
                let f = self.pop("cons_app")?;
                self.stats.fused += 1;
                self.apply_to(f, arg)?;
            }
            Instr::AccApp(n) => {
                // Fused `acc n; app` (`snd; app` when n = 0): fetch the
                // (closure, argument) pair from the environment and apply
                // it in one dispatch.
                let v = self.pop("acc_app")?;
                let w = v
                    .env_acc(n)
                    .ok_or_else(|| Self::mismatch("acc_app", "an environment spine", &v))?;
                let Value::Pair(p) = w else {
                    return Err(Self::mismatch("acc_app", "a (closure, argument) pair", &w));
                };
                let (f, arg) = match Rc::try_unwrap(p) {
                    Ok(pair) => pair,
                    Err(p) => (p.0.clone(), p.1.clone()),
                };
                self.stats.fused += 1;
                self.apply_to(f, arg)?;
            }
            Instr::Branch(then_b, else_b) => {
                let (env, b) = self.pop_pair("branch")?;
                let Value::Bool(b) = b else {
                    return Err(Self::mismatch("branch", "(env, bool)", &b));
                };
                self.stack.push(env);
                self.enter(CodeRef {
                    seg: seg.clone(),
                    block: if b { then_b } else { else_b },
                });
            }
            Instr::Switch(table) => {
                let (env, scrut) = self.pop_pair("switch")?;
                let Value::Con(tag, payload) = scrut else {
                    return Err(Self::mismatch("switch", "(env, constructor)", &scrut));
                };
                let arm = table.arms.iter().find(|a| a.tag == tag);
                match arm {
                    Some(SwitchArm { bind, code, .. }) => {
                        if *bind {
                            let payload = payload.map(|p| (*p).clone()).unwrap_or(Value::Unit);
                            self.stack.push(Value::pair(env, payload));
                        } else {
                            self.stack.push(env);
                        }
                        self.enter(CodeRef {
                            seg: seg.clone(),
                            block: *code,
                        });
                    }
                    None => match table.default {
                        Some(code) => {
                            self.stack.push(env);
                            self.enter(CodeRef {
                                seg: seg.clone(),
                                block: code,
                            });
                        }
                        None => return Err(MachineError::NoMatchingArm { tag }),
                    },
                }
            }
            Instr::Call => {
                let (v, arena) = self.pop_gen_state("call")?;
                self.stack.push(v);
                self.stats.calls += 1;
                let code = self.freeze(&arena);
                self.enter(code);
            }
            Instr::Merge => {
                let (first, second) = self.pop_pair("merge")?;
                let Value::Arena(inner) = first else {
                    return Err(Self::mismatch("merge", "(arena, (value, arena))", &first));
                };
                let (v, outer) = match second {
                    Value::Pair(p) => match (&p.0, &p.1) {
                        (v, Value::Arena(outer)) => (v.clone(), outer.clone()),
                        _ => {
                            return Err(Self::mismatch(
                                "merge",
                                "(arena, (value, arena))",
                                &Value::Pair(p.clone()),
                            ))
                        }
                    },
                    other => {
                        return Err(Self::mismatch("merge", "(arena, (value, arena))", &other))
                    }
                };
                let body = self.freeze(&inner);
                let block = outer.seg().import_block(&body.seg, body.block);
                outer.push(Instr::Cur(block));
                self.stats.emitted += 1;
                self.stack.push(Value::pair(v, Value::Arena(outer)));
            }
            Instr::MergeBranch => {
                // (((v,{P}), {A_then}), {A_else})
                let (rest, else_a) = self.pop_pair("merge_branch")?;
                let Value::Pair(rest) = rest else {
                    return Err(Self::mismatch("merge_branch", "nested arenas", &rest));
                };
                let (gen_state, then_a) = (rest.0.clone(), rest.1.clone());
                // Name the operand that is actually wrong, not the
                // (usually well-formed) generation state beneath it.
                let Value::Arena(then_a) = then_a else {
                    return Err(Self::mismatch(
                        "merge_branch",
                        "an arena for the then-branch",
                        &then_a,
                    ));
                };
                let Value::Arena(else_a) = else_a else {
                    return Err(Self::mismatch(
                        "merge_branch",
                        "an arena for the else-branch",
                        &else_a,
                    ));
                };
                let Value::Pair(gp) = gen_state else {
                    return Err(Self::mismatch("merge_branch", "(value, arena)", &gen_state));
                };
                let (v, outer) = (gp.0.clone(), gp.1.clone());
                let Value::Arena(outer) = outer else {
                    return Err(Self::mismatch("merge_branch", "(value, arena)", &outer));
                };
                let (then_c, else_c) = (self.freeze(&then_a), self.freeze(&else_a));
                let then_b = outer.seg().import_block(&then_c.seg, then_c.block);
                let else_b = outer.seg().import_block(&else_c.seg, else_c.block);
                outer.push(Instr::Branch(then_b, else_b));
                self.stats.emitted += 1;
                self.stack.push(Value::pair(v, Value::Arena(outer)));
            }
            Instr::MergeSwitch(spec) => {
                let count = spec.arms.len() + usize::from(spec.default);
                let mut arenas = Vec::with_capacity(count);
                let mut cur = self.pop("merge_switch")?;
                for _ in 0..count {
                    let Value::Pair(p) = cur else {
                        return Err(Self::mismatch("merge_switch", "stacked arenas", &cur));
                    };
                    let (rest, a) = (p.0.clone(), p.1.clone());
                    let Value::Arena(a) = a else {
                        return Err(Self::mismatch("merge_switch", "an arena", &a));
                    };
                    arenas.push(a);
                    cur = rest;
                }
                arenas.reverse(); // now in arm order, default last
                let Value::Pair(gp) = cur else {
                    return Err(Self::mismatch("merge_switch", "(value, arena)", &cur));
                };
                let (v, outer) = (gp.0.clone(), gp.1.clone());
                let Value::Arena(outer) = outer else {
                    return Err(Self::mismatch("merge_switch", "(value, arena)", &outer));
                };
                let default = if spec.default {
                    let a = arenas.pop().expect("default arena present");
                    let c = self.freeze(&a);
                    Some(outer.seg().import_block(&c.seg, c.block))
                } else {
                    None
                };
                let arms = spec
                    .arms
                    .iter()
                    .zip(arenas)
                    .map(|(&(tag, bind), a)| {
                        let c = self.freeze(&a);
                        SwitchArm {
                            tag,
                            bind,
                            code: outer.seg().import_block(&c.seg, c.block),
                        }
                    })
                    .collect();
                outer.push(Instr::Switch(Rc::new(SwitchTable { arms, default })));
                self.stats.emitted += 1;
                self.stack.push(Value::pair(v, Value::Arena(outer)));
            }
            Instr::MergeRec(n) => {
                let mut bodies_rev = Vec::with_capacity(n);
                let mut cur = self.pop("merge_rec")?;
                for _ in 0..n {
                    let Value::Pair(p) = cur else {
                        return Err(Self::mismatch("merge_rec", "stacked arenas", &cur));
                    };
                    let (rest, a) = (p.0.clone(), p.1.clone());
                    let Value::Arena(a) = a else {
                        return Err(Self::mismatch("merge_rec", "an arena", &a));
                    };
                    bodies_rev.push(a);
                    cur = rest;
                }
                bodies_rev.reverse();
                let Value::Pair(gp) = cur else {
                    return Err(Self::mismatch("merge_rec", "(value, arena)", &cur));
                };
                let (v, outer) = (gp.0.clone(), gp.1.clone());
                let Value::Arena(outer) = outer else {
                    return Err(Self::mismatch("merge_rec", "(value, arena)", &outer));
                };
                let bodies = bodies_rev
                    .iter()
                    .map(|a| {
                        let c = self.freeze(a);
                        outer.seg().import_block(&c.seg, c.block)
                    })
                    .collect();
                outer.push(Instr::RecClos(Rc::new(bodies)));
                self.stats.emitted += 1;
                self.stack.push(Value::pair(v, Value::Arena(outer)));
            }
            other => unreachable!("not a transfer instruction: {other:?}"),
        }
        Ok(())
    }

    fn apply(&mut self) -> Result<(), MachineError> {
        let (f, arg) = self.pop_pair("app")?;
        self.apply_to(f, arg)
    }

    fn apply_to(&mut self, f: Value, arg: Value) -> Result<(), MachineError> {
        match f {
            Value::Closure(c) => {
                // Always a genuine pair, even over a frame environment:
                // generating extensions are applied to arenas and their
                // state `(lenv, A)` is destructured as a literal pair by
                // the RTCG instructions. Frames are built only by
                // `env_cons`; `acc` walks mixed pair/frame spines.
                self.stack.push(Value::pair(c.env.clone(), arg));
                self.enter(c.body.clone());
                Ok(())
            }
            Value::RecClosure { group, index } => {
                // env' = ((env, f1), ..., fn), then (env', arg).
                let mut acc = group.env.clone();
                for i in 0..group.bodies.len() {
                    acc = Value::pair(
                        acc,
                        Value::RecClosure {
                            group: group.clone(),
                            index: i,
                        },
                    );
                }
                self.stack.push(Value::pair(acc, arg));
                self.enter(CodeRef {
                    seg: group.seg.clone(),
                    block: group.bodies[index],
                });
                Ok(())
            }
            other => Err(Self::mismatch("app", "a closure", &other)),
        }
    }

    fn prim(&mut self, op: PrimOp) -> Result<(), MachineError> {
        use PrimOp::*;
        let instr = "prim";
        match op {
            Neg | Not | StrSize | IntToString | Print | Ref | Deref | ArrLen => {
                let v = self.pop(instr)?;
                let out = match (op, v) {
                    (Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                    (Not, Value::Bool(b)) => Value::Bool(!b),
                    (StrSize, Value::Str(s)) => Value::Int(s.len() as i64),
                    (IntToString, Value::Int(n)) => Value::Str(Rc::from(n.to_string())),
                    (Print, Value::Str(s)) => {
                        self.output.push_str(&s);
                        Value::Unit
                    }
                    (Ref, v) => Value::Ref(Rc::new(RefCell::new(v))),
                    (Deref, Value::Ref(r)) => r.borrow().clone(),
                    (ArrLen, Value::Array(a)) => Value::Int(a.borrow().len() as i64),
                    (_, v) => return Err(Self::mismatch(instr, "a valid operand", &v)),
                };
                self.stack.push(out);
                Ok(())
            }
            ArrUpdate => {
                // (a, (i, v))
                let (a, rest) = self.pop_pair(instr)?;
                let Value::Pair(iv) = rest else {
                    return Err(Self::mismatch(instr, "(array, (index, value))", &rest));
                };
                let (Value::Array(arr), Value::Int(i)) = (&a, &iv.0) else {
                    return Err(Self::mismatch(instr, "(array, (index, value))", &a));
                };
                let mut borrow = arr.borrow_mut();
                let len = borrow.len();
                let idx = usize::try_from(*i)
                    .ok()
                    .filter(|&u| u < len)
                    .ok_or(MachineError::IndexOutOfBounds { index: *i, len })?;
                borrow[idx] = iv.1.clone();
                drop(borrow);
                self.stack.push(Value::Unit);
                Ok(())
            }
            _ => {
                // Binary.
                let (a, b) = self.pop_pair(instr)?;
                let out = match (op, &a, &b) {
                    (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
                    (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(*y)),
                    (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(*y)),
                    (Div, Value::Int(x), Value::Int(y)) => {
                        if *y == 0 {
                            return Err(MachineError::DivideByZero);
                        }
                        Value::Int(floor_div(*x, *y))
                    }
                    (Mod, Value::Int(x), Value::Int(y)) => {
                        if *y == 0 {
                            return Err(MachineError::DivideByZero);
                        }
                        Value::Int(floor_mod(*x, *y))
                    }
                    (Eq, a, b) => {
                        Value::Bool(a.structural_eq(b).ok_or(MachineError::EqualityUndefined)?)
                    }
                    (Ne, a, b) => {
                        Value::Bool(!a.structural_eq(b).ok_or(MachineError::EqualityUndefined)?)
                    }
                    (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
                    (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
                    (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
                    (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
                    (Lt, Value::Str(x), Value::Str(y)) => Value::Bool(x < y),
                    (Le, Value::Str(x), Value::Str(y)) => Value::Bool(x <= y),
                    (Gt, Value::Str(x), Value::Str(y)) => Value::Bool(x > y),
                    (Ge, Value::Str(x), Value::Str(y)) => Value::Bool(x >= y),
                    (BitAnd, Value::Int(x), Value::Int(y)) => Value::Int(x & y),
                    (Concat, Value::Str(x), Value::Str(y)) => {
                        let mut s = x.to_string();
                        s.push_str(y);
                        Value::Str(Rc::from(s))
                    }
                    (Assign, Value::Ref(r), v) => {
                        *r.borrow_mut() = v.clone();
                        Value::Unit
                    }
                    (MkArray, Value::Int(n), init) => {
                        let len = usize::try_from(*n)
                            .map_err(|_| MachineError::IndexOutOfBounds { index: *n, len: 0 })?;
                        Value::Array(Rc::new(RefCell::new(vec![init.clone(); len])))
                    }
                    (ArrSub, Value::Array(arr), Value::Int(i)) => {
                        let borrow = arr.borrow();
                        let len = borrow.len();
                        let idx = usize::try_from(*i)
                            .ok()
                            .filter(|&u| u < len)
                            .ok_or(MachineError::IndexOutOfBounds { index: *i, len })?;
                        borrow[idx].clone()
                    }
                    _ => return Err(Self::mismatch(instr, "valid binary operands", &a)),
                };
                self.stack.push(out);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(instrs: Vec<Instr>) -> CodeRef {
        CodeSeg::new().entry(instrs)
    }

    fn run(instrs: Vec<Instr>, input: Value) -> Value {
        Machine::new().run(entry(instrs), input).unwrap()
    }

    #[test]
    fn cam_pair_projections() {
        let p = Value::pair(Value::Int(1), Value::Int(2));
        assert!(matches!(run(vec![Instr::Fst], p.clone()), Value::Int(1)));
        assert!(matches!(run(vec![Instr::Snd], p), Value::Int(2)));
    }

    #[test]
    fn acc_walks_the_spine_in_one_step() {
        // Spine ((((), 1), 2), 3): Acc(0) = snd, Acc(2) = fst;fst;snd.
        let spine = Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
            Value::Int(3),
        );
        for (n, want) in [(0usize, 3i64), (1, 2), (2, 1)] {
            let mut m = Machine::new();
            let out = m.run(entry(vec![Instr::Acc(n)]), spine.clone()).unwrap();
            assert!(matches!(out, Value::Int(v) if v == want), "Acc({n})");
            assert_eq!(m.stats().steps, 1, "Acc({n}) is a single reduction step");
        }
    }

    #[test]
    fn acc_agrees_with_fst_chain_and_is_cheaper() {
        let spine = Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(7)), Value::Int(8)),
            Value::Int(9),
        );
        let chain = vec![Instr::Fst, Instr::Fst, Instr::Snd];
        let mut m1 = Machine::new();
        let v1 = m1.run(entry(chain), spine.clone()).unwrap();
        let mut m2 = Machine::new();
        let v2 = m2.run(entry(vec![Instr::Acc(2)]), spine).unwrap();
        assert_eq!(v1.to_string(), v2.to_string());
        assert!(m2.stats().steps < m1.stats().steps);
    }

    #[test]
    fn acc_off_the_spine_is_a_type_mismatch() {
        let err = Machine::new()
            .run(entry(vec![Instr::Acc(1)]), Value::Int(5))
            .unwrap_err();
        assert!(matches!(
            err,
            MachineError::TypeMismatch { instr: "acc", .. }
        ));
        let shallow = Value::pair(Value::Int(1), Value::Int(2));
        let err = Machine::new()
            .run(entry(vec![Instr::Acc(3)]), shallow)
            .unwrap_err();
        assert!(matches!(
            err,
            MachineError::TypeMismatch { instr: "acc", .. }
        ));
    }

    #[test]
    fn push_swap_cons_builds_pairs() {
        // ⟨id, quote 9⟩ applied to 5 = (5, 9)
        let out = run(
            vec![
                Instr::Push,
                Instr::Id,
                Instr::Swap,
                Instr::Quote(Value::Int(9)),
                Instr::ConsPair,
            ],
            Value::Int(5),
        );
        match out {
            Value::Pair(p) => {
                assert!(matches!(p.0, Value::Int(5)));
                assert!(matches!(p.1, Value::Int(9)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cur_app_is_beta() {
        // (fn x => snd x) 7 — body `snd` receives (env, 7).
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Cur(body),
            Instr::Swap,
            Instr::Quote(Value::Int(7)),
            Instr::ConsPair,
            Instr::App,
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(7)));
    }

    #[test]
    fn branch_on_bool() {
        let seg = CodeSeg::new();
        let t = seg.add_block(vec![Instr::Quote(Value::Int(1))]);
        let e = seg.add_block(vec![Instr::Quote(Value::Int(2))]);
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Quote(Value::Bool(true)),
            Instr::ConsPair,
            Instr::Branch(t, e),
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(1)));
    }

    #[test]
    fn emit_appends_to_arena() {
        // Start with (env=(), fresh arena); emit two instructions.
        let out = run(
            vec![
                Instr::Push,
                Instr::NewArena,
                Instr::ConsPair,
                Instr::Emit(Box::new(Instr::Fst)),
                Instr::Emit(Box::new(Instr::Snd)),
            ],
            Value::Unit,
        );
        let Value::Pair(p) = out else { panic!() };
        let Value::Arena(a) = &p.1 else { panic!() };
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn machine_arenas_freeze_into_the_program_segment() {
        let seg = CodeSeg::new();
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::Emit(Box::new(Instr::Fst)),
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        let Value::Pair(p) = out else { panic!() };
        let Value::Arena(a) = &p.1 else { panic!() };
        let frozen = a.freeze();
        assert!(
            CodeSeg::ptr_eq(&frozen.seg, &seg),
            "generated code lands in the tail of the executing segment"
        );
    }

    #[test]
    fn lift_residualizes_the_early_value() {
        // (42, arena) --lift--> arena holds Quote(42).
        let out = run(
            vec![
                Instr::Quote(Value::Int(42)),
                Instr::Push,
                Instr::NewArena,
                Instr::ConsPair,
                Instr::LiftV,
            ],
            Value::Unit,
        );
        let Value::Pair(p) = out else { panic!() };
        let Value::Arena(a) = &p.1 else { panic!() };
        let frozen = a.freeze().to_vec();
        assert!(matches!(&frozen[0], Instr::Quote(Value::Int(42))));
    }

    #[test]
    fn call_runs_generated_code() {
        // Build an arena with Quote(99), then call it.
        let out = run(
            vec![
                Instr::Quote(Value::Int(99)),
                Instr::Push,
                Instr::NewArena,
                Instr::ConsPair,
                Instr::LiftV,
                Instr::Call,
            ],
            Value::Unit,
        );
        assert!(matches!(out, Value::Int(99)));
    }

    #[test]
    fn merge_inserts_cur() {
        // inner arena [snd]; outer (v=(), {}); merge → outer holds Cur([snd]).
        let out = run(
            vec![
                // build (inner_arena, ((), outer_arena))
                Instr::NewArena, // inner on top
                Instr::Push,
                Instr::Quote(Value::Unit),
                Instr::Push,
                Instr::NewArena,
                Instr::ConsPair, // ((), outer)
                Instr::ConsPair, // (inner, ((), outer))
                Instr::Merge,
            ],
            Value::Unit,
        );
        let Value::Pair(p) = out else { panic!() };
        let Value::Arena(outer) = &p.1 else { panic!() };
        assert!(matches!(&outer.freeze().to_vec()[0], Instr::Cur(_)));
    }

    #[test]
    fn recclos_supports_recursion() {
        // f n = if n = 0 then 0 else f (n - 1); apply to 5 → 0.
        // Body env after app: ((env0, f), n).
        let seg = CodeSeg::new();
        let then_b = seg.add_block(vec![Instr::Quote(Value::Int(0))]);
        let else_b = seg.add_block(vec![
            // f (n - 1): build (f, n-1), app.
            Instr::Push,
            Instr::Fst,
            Instr::Snd, // f
            Instr::Swap,
            Instr::Push,
            Instr::Snd, // n
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Sub),
            Instr::Swap,
            Instr::Fst, // discard dup'd env... (cleanup)
            Instr::Quote(Value::Int(0)),
            Instr::Swap,
            Instr::ConsPair,
            Instr::Snd,      // n-1
            Instr::ConsPair, // (f, n-1)
            Instr::App,
        ]);
        let body = seg.add_block(vec![
            Instr::Push,
            Instr::Snd, // n
            Instr::Push,
            Instr::Quote(Value::Int(0)),
            Instr::ConsPair, // (n, 0)
            Instr::Prim(PrimOp::Eq),
            Instr::ConsPair, // (fullenv, bool)
            Instr::Branch(then_b, else_b),
        ]);
        let prog = seg.entry(vec![
            Instr::RecClos(Rc::new(vec![body])),
            Instr::Snd, // the closure
            Instr::Push,
            Instr::Swap,
            Instr::Quote(Value::Int(5)),
            Instr::ConsPair,
            Instr::App,
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(0)));
    }

    #[test]
    fn switch_dispatches_and_binds() {
        let seg = CodeSeg::new();
        let arm0 = seg.add_block(vec![Instr::Quote(Value::Int(-1))]);
        let arm1 = seg.add_block(vec![Instr::Snd]);
        let table = SwitchTable {
            arms: vec![
                SwitchArm {
                    tag: 0,
                    bind: false,
                    code: arm0,
                },
                SwitchArm {
                    tag: 1,
                    bind: true,
                    code: arm1,
                },
            ],
            default: None,
        };
        let scrut = Value::Con(1, Some(Rc::new(Value::Int(7))));
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Quote(scrut),
            Instr::ConsPair,
            Instr::Switch(Rc::new(table)),
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(7)));
    }

    #[test]
    fn switch_without_match_or_default_errors() {
        let table = SwitchTable {
            arms: vec![],
            default: None,
        };
        let scrut = Value::Con(9, None);
        let err = Machine::new()
            .run(
                entry(vec![
                    Instr::Push,
                    Instr::Quote(scrut),
                    Instr::ConsPair,
                    Instr::Switch(Rc::new(table)),
                ]),
                Value::Unit,
            )
            .unwrap_err();
        assert!(matches!(err, MachineError::NoMatchingArm { tag: 9 }));
    }

    #[test]
    fn division_by_zero_errors() {
        let err = Machine::new()
            .run(
                entry(vec![Instr::Prim(PrimOp::Div)]),
                Value::pair(Value::Int(1), Value::Int(0)),
            )
            .unwrap_err();
        assert_eq!(err, MachineError::DivideByZero);
    }

    #[test]
    fn fuel_limits_execution() {
        // An infinite loop: f x = f x.
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![
            Instr::Push,
            Instr::Fst,
            Instr::Snd, // f
            Instr::Swap,
            Instr::Snd, // x
            Instr::ConsPair,
            Instr::App,
        ]);
        let prog = seg.entry(vec![
            Instr::RecClos(Rc::new(vec![body])),
            Instr::Snd,
            Instr::Push,
            Instr::Swap,
            Instr::Quote(Value::Unit),
            Instr::ConsPair,
            Instr::App,
        ]);
        let err = Machine::with_fuel(10_000)
            .run(prog, Value::Unit)
            .unwrap_err();
        assert!(matches!(err, MachineError::OutOfFuel { .. }));
    }

    #[test]
    fn fuel_budget_is_per_run() {
        // 4 steps per run; 5 runs under an 8-step budget must all succeed
        // even though lifetime steps (20) exceed the budget.
        let mut m = Machine::with_fuel(8);
        let prog = entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]);
        for _ in 0..5 {
            let out = m.run(prog.clone(), Value::Int(1)).unwrap();
            assert!(matches!(out, Value::Int(2)));
        }
        assert_eq!(m.stats().steps, 20);
    }

    #[test]
    fn env_cons_builds_frames_acc_indexes_them() {
        // let v0 = 10 in let v1 = 20 in v0 + v1 — flat encoding: each
        // extension is env_cons, each access a single Acc.
        let prog = entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(10)),
            Instr::EnvCons,
            Instr::Push,
            Instr::Quote(Value::Int(20)),
            Instr::EnvCons,
            Instr::Push,
            Instr::Acc(1),
            Instr::Swap,
            Instr::Acc(0),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]);
        let mut m = Machine::new();
        let out = m.run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(30)));
    }

    #[test]
    fn fst_snd_project_frames_like_the_spine_they_denote() {
        let env = Value::env_extend(Value::env_extend(Value::Unit, Value::Int(1)), Value::Int(2));
        let out = Machine::new()
            .run(entry(vec![Instr::Snd]), env.clone())
            .unwrap();
        assert!(matches!(out, Value::Int(2)));
        let out = Machine::new()
            .run(entry(vec![Instr::Fst, Instr::Snd]), env)
            .unwrap();
        assert!(matches!(out, Value::Int(1)));
    }

    #[test]
    fn closure_over_frame_env_binds_a_pair_and_acc_walks_the_mixed_spine() {
        // cur captures a frame env; application always binds with a
        // genuine pair (the RTCG state must stay destructurable), so the
        // body sees Pair(frame, arg): Acc(0) is the argument and Acc(1)
        // resolves through the frame.
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![
            Instr::Push,
            Instr::Acc(0),
            Instr::Swap,
            Instr::Acc(1),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Sub),
        ]);
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(100)),
            Instr::EnvCons,
            Instr::Cur(body),
            Instr::Push,
            Instr::Swap,
            Instr::Quote(Value::Int(7)),
            Instr::ConsPair,
            Instr::App,
        ]);
        let out = Machine::new().run(prog, Value::Unit).unwrap();
        // arg - binding = 7 - 100
        assert!(matches!(out, Value::Int(-93)));
    }

    #[test]
    fn fuel_charges_fused_opcodes_their_component_count() {
        // `push; acc 3` (2 steps, 2+3+1... i.e. 1 + 4 fuel) vs the fused
        // `push_acc 3` (1 step, same 5 fuel): both must exhaust the same
        // budget at the same point.
        let deep = Value::pair(
            Value::pair(
                Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
                Value::Int(3),
            ),
            Value::Int(4),
        );
        let plain = vec![Instr::Push, Instr::Acc(3), Instr::ConsPair];
        let fused = vec![Instr::PushAcc(3), Instr::ConsPair];
        // Plain: push(1) + acc3(4) + cons(1) = 6 fuel; fused: 5 + 1 = 6.
        for budget in [5u64, 6] {
            let mut m1 = Machine::with_fuel(budget);
            let r1 = m1.run(entry(plain.clone()), deep.clone());
            let mut m2 = Machine::with_fuel(budget);
            let r2 = m2.run(entry(fused.clone()), deep.clone());
            assert_eq!(
                r1.is_err(),
                r2.is_err(),
                "fuel {budget}: fused and plain disagree on exhaustion"
            );
        }
        // And the spine-walk equivalent (fst;fst;fst;snd) matches Acc(3).
        let chain = vec![
            Instr::Push,
            Instr::Fst,
            Instr::Fst,
            Instr::Fst,
            Instr::Snd,
            Instr::ConsPair,
        ];
        for budget in [5u64, 6] {
            let mut m1 = Machine::with_fuel(budget);
            let r1 = m1.run(entry(chain.clone()), deep.clone());
            let mut m2 = Machine::with_fuel(budget);
            let r2 = m2.run(entry(plain.clone()), deep.clone());
            assert_eq!(r1.is_err(), r2.is_err(), "fuel {budget}");
        }
    }

    #[test]
    fn division_primitives_floor_toward_negative_infinity() {
        // SML: ~7 div 2 = ~4, ~7 mod 2 = 1; mod takes the divisor's sign.
        let run_op = |op, x, y| {
            Machine::new()
                .run(
                    entry(vec![Instr::Prim(op)]),
                    Value::pair(Value::Int(x), Value::Int(y)),
                )
                .unwrap()
        };
        assert!(matches!(run_op(PrimOp::Div, -7, 2), Value::Int(-4)));
        assert!(matches!(run_op(PrimOp::Mod, -7, 2), Value::Int(1)));
        assert!(matches!(run_op(PrimOp::Div, 7, -2), Value::Int(-4)));
        assert!(matches!(run_op(PrimOp::Mod, 7, -2), Value::Int(-1)));
        assert!(matches!(run_op(PrimOp::Div, -7, -2), Value::Int(3)));
        assert!(matches!(run_op(PrimOp::Mod, -7, -2), Value::Int(-1)));
    }

    #[test]
    fn floor_helpers_satisfy_the_division_identity() {
        let cases = [
            (7, 2),
            (-7, 2),
            (7, -2),
            (-7, -2),
            (6, 3),
            (-6, 3),
            (0, 5),
            (i64::MAX, 7),
            (i64::MIN + 1, 7),
        ];
        for (x, y) in cases {
            let (q, r) = (floor_div(x, y), floor_mod(x, y));
            assert_eq!(y.wrapping_mul(q).wrapping_add(r), x, "x={x} y={y}");
            assert!(r == 0 || (r < 0) == (y < 0), "mod sign follows divisor");
        }
        // The one wrapping case, consistent with the other primitives.
        assert_eq!(floor_div(i64::MIN, -1), i64::MIN);
        assert_eq!(floor_mod(i64::MIN, -1), 0);
    }

    #[test]
    fn merge_branch_reports_the_offending_operand() {
        // ((((), {P}), 42), 43): the then/else slots hold ints, not arenas.
        let gen = Value::pair(Value::Unit, Value::Arena(Arena::new()));
        let bad = Value::pair(Value::pair(gen, Value::Int(42)), Value::Int(43));
        let err = Machine::new()
            .run(entry(vec![Instr::MergeBranch]), bad)
            .unwrap_err();
        let MachineError::TypeMismatch {
            expected, found, ..
        } = err
        else {
            panic!("unexpected: {err:?}")
        };
        assert!(found.contains("42"), "names the bad operand, got {found:?}");
        assert!(
            expected.contains("then"),
            "says which slot, got {expected:?}"
        );
    }

    #[test]
    fn repeated_calls_hit_the_freeze_cache() {
        let a = Arena::new();
        a.push(Instr::Quote(Value::Int(9)));
        let gen = Value::pair(Value::Unit, Value::Arena(a));
        let mut m = Machine::new();
        let out = m
            .run(
                entry(vec![
                    Instr::Quote(gen.clone()),
                    Instr::Call,
                    Instr::Quote(gen.clone()),
                    Instr::Call,
                    Instr::Quote(gen),
                    Instr::Call,
                ]),
                Value::Unit,
            )
            .unwrap();
        assert!(matches!(out, Value::Int(9)));
        let stats = m.stats();
        assert_eq!(stats.calls, 3);
        assert_eq!(stats.freezes, 1, "only the first call materializes code");
        assert_eq!(stats.freeze_hits, 2);
    }

    #[test]
    fn growth_between_calls_invalidates_the_freeze_cache() {
        let a = Arena::new();
        a.push(Instr::Quote(Value::Int(1)));
        let gen = Value::pair(Value::Unit, Value::Arena(a.clone()));
        let mut m = Machine::new();
        let out = m
            .run(
                entry(vec![Instr::Quote(gen.clone()), Instr::Call]),
                Value::Unit,
            )
            .unwrap();
        assert!(matches!(out, Value::Int(1)));
        // The generator emits one more instruction; the next call must
        // execute the extended code, not the cached snapshot.
        a.push(Instr::Quote(Value::Int(2)));
        let out = m
            .run(entry(vec![Instr::Quote(gen), Instr::Call]), Value::Unit)
            .unwrap();
        assert!(matches!(out, Value::Int(2)));
        let stats = m.stats();
        assert_eq!(stats.freezes, 2);
        assert_eq!(stats.freeze_hits, 0);
    }

    #[test]
    fn opcode_counts_are_optional_and_accurate() {
        let mut m = Machine::new();
        assert!(m.stats().opcodes.is_none(), "off by default");
        m.set_count_opcodes(true);
        m.run(
            entry(vec![
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
            ]),
            Value::Unit,
        )
        .unwrap();
        let stats = m.stats();
        let counts = stats.opcodes.unwrap();
        assert_eq!(counts.get("push"), 1);
        assert_eq!(counts.get("quote"), 1);
        assert_eq!(counts.get("cons"), 1);
        assert_eq!(counts.get("app"), 0);
        assert_eq!(counts.nonzero().map(|(_, c)| c).sum::<u64>(), stats.steps);
        m.reset_stats();
        assert_eq!(m.stats().steps, 0);
        assert!(m.stats().opcodes.is_some(), "counting survives reset");
    }

    #[test]
    fn stats_delta_since_subtracts_counters() {
        let mut m = Machine::new();
        let prog = entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
        ]);
        m.run(prog.clone(), Value::Unit).unwrap();
        let before = m.stats();
        m.run(prog, Value::Unit).unwrap();
        let delta = m.stats().delta_since(&before);
        assert_eq!(delta.steps, 3);
        assert_eq!(delta.emitted, 0);
    }

    #[test]
    fn stats_count_steps_and_emits() {
        let mut m = Machine::new();
        m.run(
            entry(vec![
                Instr::Push,
                Instr::NewArena,
                Instr::ConsPair,
                Instr::Emit(Box::new(Instr::Id)),
            ]),
            Value::Unit,
        )
        .unwrap();
        let stats = m.stats();
        assert_eq!(stats.steps, 4);
        assert_eq!(stats.emitted, 1);
        assert_eq!(stats.arenas, 1);
    }

    #[test]
    fn print_accumulates_output() {
        let mut m = Machine::new();
        m.run(
            entry(vec![
                Instr::Quote(Value::Str(Rc::from("hello "))),
                Instr::Prim(PrimOp::Print),
                Instr::Quote(Value::Str(Rc::from("world"))),
                Instr::Prim(PrimOp::Print),
            ]),
            Value::Unit,
        )
        .unwrap();
        assert_eq!(m.output(), "hello world");
    }

    #[test]
    fn arrays_allocate_index_update() {
        let mut m = Machine::new();
        // array (3, 0); update (a, 1, 5); sub (a, 1)
        let out = m
            .run(
                entry(vec![
                    Instr::Quote(Value::pair(Value::Int(3), Value::Int(0))),
                    Instr::Prim(PrimOp::MkArray),
                    Instr::Push,
                    Instr::Push,
                    Instr::Quote(Value::pair(Value::Int(1), Value::Int(5))),
                    Instr::ConsPair, // (a, (1, 5))
                    Instr::Prim(PrimOp::ArrUpdate),
                    Instr::Quote(Value::Int(1)), // drop unit, keep index
                    Instr::ConsPair,             // (a, 1)
                    Instr::Prim(PrimOp::ArrSub),
                ]),
                Value::Unit,
            )
            .unwrap();
        assert!(matches!(out, Value::Int(5)));
    }

    #[test]
    fn array_out_of_bounds_errors() {
        let err = Machine::new()
            .run(
                entry(vec![
                    Instr::Quote(Value::pair(Value::Int(2), Value::Int(0))),
                    Instr::Prim(PrimOp::MkArray),
                    Instr::Push,
                    Instr::Quote(Value::Int(5)),
                    Instr::ConsPair,
                    Instr::Prim(PrimOp::ArrSub),
                ]),
                Value::Unit,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MachineError::IndexOutOfBounds { index: 5, len: 2 }
        ));
    }

    #[test]
    fn equality_on_closures_is_an_error() {
        let f = Value::Closure(Rc::new(Closure {
            env: Value::Unit,
            body: entry(vec![]),
        }));
        let err = Machine::new()
            .run(
                entry(vec![Instr::Prim(PrimOp::Eq)]),
                Value::pair(f.clone(), f),
            )
            .unwrap_err();
        assert_eq!(err, MachineError::EqualityUndefined);
    }

    #[test]
    fn refs_assign_and_deref() {
        let out = run(
            vec![
                Instr::Quote(Value::Int(1)),
                Instr::Prim(PrimOp::Ref),
                Instr::Push,
                Instr::Push,
                Instr::Quote(Value::Int(42)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Assign),
                Instr::Swap, // bring ref back on top, drop unit below? (unit, ref)
                Instr::Prim(PrimOp::Deref),
            ],
            Value::Unit,
        );
        assert!(matches!(out, Value::Int(42)));
    }

    #[test]
    fn tracing_records_mnemonics() {
        let mut m = Machine::new();
        m.set_trace(2);
        m.run(
            entry(vec![
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
            ]),
            Value::Unit,
        )
        .unwrap();
        let t = m.trace().unwrap();
        assert_eq!(t.mnemonics(), vec!["push", "quote"], "bounded at limit");
    }

    #[test]
    fn tracing_records_block_and_pc() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Cur(body),
            Instr::Swap,
            Instr::Quote(Value::Int(7)),
            Instr::ConsPair,
            Instr::App,
        ]);
        let mut m = Machine::new();
        m.set_trace(16);
        m.run(prog.clone(), Value::Unit).unwrap();
        let t = m.trace().unwrap();
        // The entry block is block 1 (the body was added first), and the
        // applied closure body runs as block 0 at pc 0.
        assert_eq!(t.entries[0].block, prog.block.0);
        assert_eq!(t.entries[0].pc, 0);
        assert_eq!(t.entries[1].pc, 1);
        let last = t.entries.last().unwrap();
        assert_eq!((last.block, last.pc, last.mnemonic), (body.0, 0, "snd"));
    }

    #[test]
    fn machine_errors_display() {
        assert!(MachineError::DivideByZero.to_string().contains("zero"));
        assert!(MachineError::Fail("m".into()).to_string().contains('m'));
    }

    #[test]
    fn fused_opcodes_agree_with_their_pairs_and_count_as_fused() {
        // Each fused opcode computes exactly what the pair it replaces
        // computes, in one reduction step, and bumps `Stats::fused`.
        let spine = Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
            Value::Int(3),
        );
        let cases: Vec<(Vec<Instr>, Vec<Instr>, Value)> = vec![
            (
                vec![
                    Instr::Push,
                    Instr::Acc(1),
                    Instr::Swap,
                    Instr::Snd,
                    Instr::ConsPair,
                ],
                vec![Instr::PushAcc(1), Instr::Swap, Instr::Snd, Instr::ConsPair],
                spine.clone(),
            ),
            (
                vec![
                    Instr::Push,
                    Instr::Swap,
                    Instr::Quote(Value::Int(9)),
                    Instr::ConsPair,
                ],
                vec![Instr::Push, Instr::Swap, Instr::QuoteCons(Value::Int(9))],
                spine.clone(),
            ),
            (
                vec![
                    Instr::Push,
                    Instr::Snd,
                    Instr::Swap,
                    Instr::ConsPair,
                    Instr::Fst,
                ],
                vec![Instr::PushAcc(0), Instr::SwapCons, Instr::Fst],
                spine.clone(),
            ),
            (
                vec![Instr::Push, Instr::Quote(Value::Int(4)), Instr::ConsPair],
                vec![Instr::PushQuote(Value::Int(4)), Instr::ConsPair],
                spine.clone(),
            ),
        ];
        for (plain, fused, input) in cases {
            let mut m1 = Machine::new();
            let v1 = m1.run(entry(plain.clone()), input.clone()).unwrap();
            let mut m2 = Machine::new();
            let v2 = m2.run(entry(fused.clone()), input).unwrap();
            assert_eq!(v1.to_string(), v2.to_string(), "{plain:?} vs {fused:?}");
            assert_eq!(m1.stats().fused, 0, "plain code dispatches no fused ops");
            assert!(m2.stats().fused > 0, "{fused:?}");
            assert!(m2.stats().steps < m1.stats().steps, "{fused:?}");
        }
    }

    #[test]
    fn fused_application_transfers_like_cons_app() {
        // (fn x => snd x) 7 via ConsApp and via AccApp.
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let prog = seg.entry(vec![
            Instr::Push,
            Instr::Cur(body),
            Instr::Swap,
            Instr::Quote(Value::Int(7)),
            Instr::ConsApp,
        ]);
        let mut m = Machine::new();
        let out = m.run(prog, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(7)));
        assert_eq!(m.stats().fused, 1);

        // AccApp(0): env is (_, (closure, arg)); snd; app in one step.
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let mk = seg.entry(vec![Instr::Cur(body)]);
        let clos = Machine::new().run(mk, Value::Unit).unwrap();
        let env = Value::pair(Value::Unit, Value::pair(clos, Value::Int(11)));
        let seg2 = CodeSeg::new();
        let prog = seg2.entry(vec![Instr::AccApp(0)]);
        let mut m = Machine::new();
        let out = m.run(prog, env).unwrap();
        assert!(matches!(out, Value::Int(11)));
        assert_eq!(m.stats().fused, 1);
    }

    #[test]
    fn fuse_flag_fuses_frozen_generated_code() {
        // A generator emits the stereotyped push/quote/cons/add sequence;
        // with `set_fuse` the freeze rewrites it so the call dispatches
        // fused opcodes — and the unfused machine agrees on the value.
        let a = Arena::new();
        for _ in 0..10 {
            a.push(Instr::Push);
            a.push(Instr::Quote(Value::Int(1)));
            a.push(Instr::ConsPair);
            a.push(Instr::Prim(PrimOp::Add));
        }
        let gen = Value::pair(Value::Int(0), Value::Arena(a));
        let prog = entry(vec![Instr::Call]);

        let mut plain = Machine::new();
        let v1 = plain.run(prog.clone(), gen.clone()).unwrap();
        assert_eq!(plain.stats().fused, 0);

        let mut fusing = Machine::new();
        fusing.set_fuse(true);
        let v2 = fusing.run(prog.clone(), gen.clone()).unwrap();
        assert_eq!(v1.to_string(), v2.to_string());
        assert!(fusing.stats().fused > 0, "frozen code was fused");
        assert!(
            fusing.stats().steps < plain.stats().steps,
            "fusion reduces the step count: {} vs {}",
            fusing.stats().steps,
            plain.stats().steps
        );

        // The two flavors freeze into distinct cache slots: running the
        // same generator on the plain machine again is still unfused.
        let mut plain2 = Machine::new();
        let v3 = plain2.run(prog, gen).unwrap();
        assert_eq!(v1.to_string(), v3.to_string());
        assert_eq!(plain2.stats().fused, 0, "fuse slot does not leak");
    }

    #[test]
    fn pair_profile_counts_adjacent_dispatches() {
        let mut m = Machine::new();
        assert!(m.pair_profile().is_none(), "off by default");
        m.set_profile_pairs(true);
        m.run(
            entry(vec![
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
            ]),
            Value::Unit,
        )
        .unwrap();
        let hist = m.pair_profile().unwrap();
        let op = |name: &str| OPCODE_NAMES.iter().position(|n| *n == name).unwrap();
        assert_eq!(hist[op("push")][op("quote")], 1);
        assert_eq!(hist[op("quote")][op("cons")], 1);
        assert_eq!(hist[op("cons")][op("push")], 0, "no wraparound");
        let total: u64 = hist.iter().flatten().sum();
        assert_eq!(total, 2, "n instructions -> n-1 adjacent pairs");
    }
}
