//! The CCAM instruction set.
//!
//! The seven CAM instructions of Cousineau–Curien–Mauny plus `quote`, the
//! five run-time code-generation instructions of the paper (`emit`, `lift`,
//! `arena`, `merge`, `call`), and the extensions for conditionals,
//! recursion, datatypes, primitives, and the *merge family* used to build
//! specialized branch/dispatch/recursive code inside arenas (DESIGN.md
//! §3.1).
//!
//! Instructions are **flat**: nested code (`cur` bodies, branch arms,
//! switch arms, recursive groups) is referenced by [`BlockId`] into the
//! containing [`CodeSeg`](crate::seg::CodeSeg) rather than owned as a
//! nested vector, so an instruction is meaningful only relative to its
//! segment (DESIGN.md §10).

use crate::seg::{BlockId, CodeSeg};
use crate::value::{ConTag, Value};
use std::fmt;
use std::rc::Rc;

/// One arm of a `switch` dispatch.
#[derive(Debug, Clone)]
pub struct SwitchArm {
    /// Tag to match.
    pub tag: ConTag,
    /// Whether the arm binds the constructor payload
    /// (top becomes `(env, payload)`; otherwise just `env`).
    pub bind: bool,
    /// Arm body, a block of the containing segment.
    pub code: BlockId,
}

/// The dispatch table of a `switch` instruction.
#[derive(Debug, Clone)]
pub struct SwitchTable {
    /// Arms in declaration order.
    pub arms: Vec<SwitchArm>,
    /// Fallback block (top becomes `env`).
    pub default: Option<BlockId>,
}

/// The shape of a `merge_switch`: which tags/binders the generated
/// dispatch will have. The arm bodies are taken from arenas on the stack.
#[derive(Debug, Clone)]
pub struct MergeSwitchSpec {
    /// `(tag, binds payload)` per arm, in order.
    pub arms: Vec<(ConTag, bool)>,
    /// Whether a default arena is present.
    pub default: bool,
}

/// Primitive machine operations. Unary primitives act on the top value;
/// binary on a top pair; ternary on a right-nested top triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (fails on zero divisor).
    Div,
    /// Integer remainder (fails on zero divisor).
    Mod,
    /// Integer negation.
    Neg,
    /// Structural equality.
    Eq,
    /// Structural inequality.
    Ne,
    /// Less-than (integers and strings).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// String concatenation.
    Concat,
    /// Bitwise AND on integers.
    BitAnd,
    /// Boolean negation.
    Not,
    /// String length.
    StrSize,
    /// Integer to string.
    IntToString,
    /// Print a string to the machine's output buffer.
    Print,
    /// Allocate a reference cell.
    Ref,
    /// Dereference.
    Deref,
    /// Assign to a reference cell.
    Assign,
    /// Allocate an array: `(n, init)`.
    MkArray,
    /// Array indexing: `(a, i)`.
    ArrSub,
    /// Array update: `(a, (i, v))`.
    ArrUpdate,
    /// Array length.
    ArrLen,
}

/// A CCAM instruction.
#[derive(Debug, Clone)]
pub enum Instr {
    // ---- the seven CAM instructions ----
    /// No-op.
    Id,
    /// Project the first component of the top pair.
    Fst,
    /// Project the second component of the top pair.
    Snd,
    /// Indexed environment access: `Acc(n)` ≡ `Fst^n; Snd` fused into a
    /// single dispatch — walk `n` links down the left-nested pair spine,
    /// then take the second component. The compiler emits this in indexed
    /// environment mode (`EnvMode::Indexed` in `mlbox-compile`); the
    /// peephole optimizer also rewrites residual `Fst..Fst; Snd` chains
    /// into it.
    Acc(usize),
    /// Duplicate the top of the stack.
    Push,
    /// Exchange the two top stack entries.
    Swap,
    /// Pop `v` then `u`; push the pair `(u, v)`.
    ConsPair,
    /// Apply: top is `([v:P], u)`; becomes `(v, u)` and runs `P`.
    App,

    // ---- constants and closures ----
    /// Replace the top with a constant (the paper's `'v`).
    Quote(Value),
    /// Build a closure capturing the top value; the body is a block of
    /// the containing segment.
    Cur(BlockId),

    // ---- run-time code generation (the paper's five) ----
    /// Append a (static) instruction to the arena in the top pair
    /// `(v, {P})`. Nested `emit` is rejected by [`validate`].
    Emit(Box<Instr>),
    /// Residualize: append `Quote(v)` to the arena in the top pair
    /// `(v, {P})`.
    LiftV,
    /// Replace the top with a fresh empty arena.
    NewArena,
    /// Top is `({P'}, (v, {P''}))`; append `Cur(P')` to `{P''}`, leaving
    /// `(v, {P''})`.
    Merge,
    /// Top is `(v, {P'})`; splice: leave `v` and run `P'`.
    Call,

    // ---- extensions: control, data, primitives ----
    /// Top is `(env, bool)`; leave `env`, run the chosen branch block.
    Branch(BlockId, BlockId),
    /// Build a recursive closure group capturing the top environment and
    /// extend the environment with all members:
    /// `env` becomes `((env, f1), ..., fn)`.
    RecClos(Rc<Vec<BlockId>>),
    /// Wrap the top value in a constructor with a payload.
    Pack(ConTag),
    /// Top is `(env, con)`; dispatch on the constructor tag.
    Switch(Rc<SwitchTable>),
    /// Primitive operation on the top value.
    Prim(PrimOp),
    /// Abort with a message (inexhaustive match).
    Fail(Rc<str>),

    // ---- superinstructions (the fusion layer, DESIGN.md §11) ----
    /// Fused `Push; Acc(n)`: keep the top value and push its `n`th
    /// environment slot in one dispatch. `PushAcc(0)` also covers the
    /// fused `Push; Snd`. Produced only by `opt::fuse`; never emitted
    /// directly by the compiler.
    PushAcc(usize),
    /// Fused `Quote(v); ConsPair`: pop the top, pop `u`, push `(u, v)`.
    QuoteCons(Value),
    /// Fused `Swap; ConsPair`: pop `t` then `n`, push `(t, n)` — a pair
    /// built with the operands in stack order instead of reversed.
    SwapCons,
    /// Fused `ConsPair; App`: pop the argument and the closure and apply,
    /// without materializing the intermediate pair on the stack.
    ConsApp,
    /// Fused `Acc(n); App` (and `Snd; App` as `AccApp(0)`): fetch the
    /// closure/argument pair from environment slot `n` and apply it.
    AccApp(usize),
    /// Fused `Push; Quote(v)`: keep the top value and push the constant
    /// `v` above it.
    PushQuote(Value),
    /// Environment extension for flat-frame mode (`EnvMode::Flat`): pop
    /// the binding `v` then the environment `E`; push `E` extended with
    /// `v` as a contiguous [`Frame`](crate::value::Frame) slot.
    /// Semantically identical to [`Instr::ConsPair`] on an environment
    /// spine — the frame denotes exactly the pair `(E, v)` — but `Acc(n)`
    /// against the result is a bounds-checked index, not a spine walk.
    /// Emitted only by the flat-mode compiler at `let`/declaration
    /// extension sites.
    EnvCons,

    // ---- the merge family (specialized control inside arenas) ----
    /// Top is `(((v,{P}), {A_then}), {A_else})`; append
    /// `Branch(A_then, A_else)` to `{P}`, leaving `(v, {P})`.
    MergeBranch,
    /// Like [`Instr::MergeBranch`] for `switch`: pops one arena per arm
    /// (plus one for the default if present), appending a specialized
    /// `Switch`.
    MergeSwitch(Rc<MergeSwitchSpec>),
    /// Pops `n` arenas, appending a specialized `RecClos` group.
    MergeRec(usize),
}

/// Number of distinct opcodes, for [`Instr::opcode`]-indexed tables.
pub const OPCODE_COUNT: usize = 31;

/// Mnemonics indexed by [`Instr::opcode`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "id",
    "fst",
    "snd",
    "push",
    "swap",
    "cons",
    "app",
    "quote",
    "cur",
    "emit",
    "lift",
    "arena",
    "merge",
    "call",
    "branch",
    "recclos",
    "pack",
    "switch",
    "prim",
    "fail",
    "merge_branch",
    "merge_switch",
    "merge_rec",
    "acc",
    "push_acc",
    "quote_cons",
    "swap_cons",
    "cons_app",
    "acc_app",
    "push_quote",
    "env_cons",
];

impl Instr {
    /// A dense opcode index in `0..OPCODE_COUNT` (operands elided), used
    /// for per-opcode statistics tables.
    pub fn opcode(&self) -> usize {
        match self {
            Instr::Id => 0,
            Instr::Fst => 1,
            Instr::Snd => 2,
            Instr::Push => 3,
            Instr::Swap => 4,
            Instr::ConsPair => 5,
            Instr::App => 6,
            Instr::Quote(_) => 7,
            Instr::Cur(_) => 8,
            Instr::Emit(_) => 9,
            Instr::LiftV => 10,
            Instr::NewArena => 11,
            Instr::Merge => 12,
            Instr::Call => 13,
            Instr::Branch(_, _) => 14,
            Instr::RecClos(_) => 15,
            Instr::Pack(_) => 16,
            Instr::Switch(_) => 17,
            Instr::Prim(_) => 18,
            Instr::Fail(_) => 19,
            Instr::MergeBranch => 20,
            Instr::MergeSwitch(_) => 21,
            Instr::MergeRec(_) => 22,
            Instr::Acc(_) => 23,
            Instr::PushAcc(_) => 24,
            Instr::QuoteCons(_) => 25,
            Instr::SwapCons => 26,
            Instr::ConsApp => 27,
            Instr::AccApp(_) => 28,
            Instr::PushQuote(_) => 29,
            Instr::EnvCons => 30,
        }
    }

    /// A human-readable mnemonic (operands elided).
    pub fn mnemonic(&self) -> &'static str {
        OPCODE_NAMES[self.opcode()]
    }
}

/// Validation error for malformed code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Checks the paper's structural invariant: **no nested emits** —
/// `emit(emit(i))` must never occur, at any depth inside `Cur`/`Branch`/
/// `Switch`/`RecClos` bodies (§4.2: "nested emits are not allowed on the
/// CCAM"). Block references in `code` are resolved against `seg`.
///
/// # Errors
///
/// Returns a [`ValidateError`] locating the first nested emit.
pub fn validate(seg: &CodeSeg, code: &[Instr]) -> Result<(), ValidateError> {
    fn visit_block(seg: &CodeSeg, b: BlockId) -> Result<(), ValidateError> {
        // Copy the block out so the segment is not borrowed across the
        // recursion (validation is not a hot path).
        for i in seg.block_to_vec(b) {
            visit(seg, &i)?;
        }
        Ok(())
    }
    fn visit(seg: &CodeSeg, i: &Instr) -> Result<(), ValidateError> {
        match i {
            Instr::Emit(inner) => {
                if matches!(**inner, Instr::Emit(_)) {
                    return Err(ValidateError {
                        message: "nested emit: emit(emit(_)) is not a legal CCAM instruction"
                            .to_string(),
                    });
                }
                visit(seg, inner)
            }
            Instr::Cur(c) => visit_block(seg, *c),
            Instr::Branch(a, b) => {
                visit_block(seg, *a)?;
                visit_block(seg, *b)
            }
            Instr::Switch(table) => {
                for arm in &table.arms {
                    visit_block(seg, arm.code)?;
                }
                if let Some(d) = table.default {
                    visit_block(seg, d)?;
                }
                Ok(())
            }
            Instr::RecClos(bodies) => {
                for &b in bodies.iter() {
                    visit_block(seg, b)?;
                }
                Ok(())
            }
            // Exhaustive on purpose: adding an instruction must force a
            // decision about whether it can carry nested code.
            Instr::Id
            | Instr::Fst
            | Instr::Snd
            | Instr::Acc(_)
            | Instr::Push
            | Instr::Swap
            | Instr::ConsPair
            | Instr::App
            | Instr::Quote(_)
            | Instr::LiftV
            | Instr::NewArena
            | Instr::Merge
            | Instr::Call
            | Instr::Pack(_)
            | Instr::Prim(_)
            | Instr::Fail(_)
            | Instr::MergeBranch
            | Instr::MergeSwitch(_)
            | Instr::MergeRec(_)
            | Instr::PushAcc(_)
            | Instr::QuoteCons(_)
            | Instr::SwapCons
            | Instr::ConsApp
            | Instr::AccApp(_)
            | Instr::PushQuote(_)
            | Instr::EnvCons => Ok(()),
        }
    }
    for i in code {
        visit(seg, i)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_emit_is_rejected() {
        let seg = CodeSeg::new();
        let bad = vec![Instr::Emit(Box::new(Instr::Emit(Box::new(Instr::Id))))];
        assert!(validate(&seg, &bad).is_err());
    }

    #[test]
    fn emit_of_cur_with_emits_is_legal() {
        // The closure-insertion technique: a statically compiled Cur body
        // may contain emits; that is not a *nested* emit.
        let seg = CodeSeg::new();
        let inner = seg.add_block(vec![Instr::Emit(Box::new(Instr::Id))]);
        let ok = vec![Instr::Emit(Box::new(Instr::Cur(inner)))];
        assert!(validate(&seg, &ok).is_ok());
    }

    #[test]
    fn deep_nested_emit_found_inside_cur() {
        let seg = CodeSeg::new();
        let inner = seg.add_block(vec![Instr::Emit(Box::new(Instr::Emit(Box::new(
            Instr::Id,
        ))))]);
        let bad = vec![Instr::Cur(inner)];
        assert!(validate(&seg, &bad).is_err());
    }

    #[test]
    fn mnemonics_exist() {
        assert_eq!(Instr::Id.mnemonic(), "id");
        assert_eq!(Instr::Emit(Box::new(Instr::Id)).mnemonic(), "emit");
        assert_eq!(Instr::MergeBranch.mnemonic(), "merge_branch");
        assert_eq!(Instr::Acc(3).mnemonic(), "acc");
    }

    #[test]
    fn emitted_acc_is_legal() {
        let seg = CodeSeg::new();
        let ok = vec![Instr::Emit(Box::new(Instr::Acc(2)))];
        assert!(validate(&seg, &ok).is_ok());
    }
}
