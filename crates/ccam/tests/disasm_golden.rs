//! Golden test: the disassembly of a program exercising the *entire*
//! instruction set — including the merge family and the indexed-access
//! extension — is pinned exactly. Adding an instruction without teaching
//! the disassembler (and this test) about it fails here.

use ccam::disasm::{census, disassemble};
use ccam::instr::{Instr, MergeSwitchSpec, PrimOp, SwitchArm, SwitchTable, OPCODE_NAMES};
use ccam::value::Value;
use std::rc::Rc;

/// One instance of every instruction, in opcode-table order where the
/// rendering allows it.
fn full_instruction_set() -> Vec<Instr> {
    vec![
        Instr::Id,
        Instr::Fst,
        Instr::Snd,
        Instr::Acc(2),
        Instr::Push,
        Instr::Swap,
        Instr::ConsPair,
        Instr::App,
        Instr::Quote(Value::Int(7)),
        Instr::Cur(Rc::new(vec![Instr::Snd])),
        Instr::Emit(Box::new(Instr::Acc(1))),
        Instr::Emit(Box::new(Instr::Cur(Rc::new(vec![Instr::Id])))),
        Instr::LiftV,
        Instr::NewArena,
        Instr::Merge,
        Instr::Call,
        Instr::Branch(Rc::new(vec![Instr::Id]), Rc::new(vec![Instr::Fst])),
        Instr::RecClos(Rc::new(vec![Rc::new(vec![Instr::Snd])])),
        Instr::Pack(3),
        Instr::Switch(Rc::new(SwitchTable {
            arms: vec![SwitchArm {
                tag: 0,
                bind: true,
                code: Rc::new(vec![Instr::Snd]),
            }],
            default: Some(Rc::new(vec![Instr::Id])),
        })),
        Instr::Prim(PrimOp::Add),
        Instr::Fail("boom".into()),
        Instr::MergeBranch,
        Instr::MergeSwitch(Rc::new(MergeSwitchSpec {
            arms: vec![(0, false), (1, true)],
            default: true,
        })),
        Instr::MergeRec(2),
    ]
}

#[test]
fn disassembly_of_the_full_instruction_set_is_golden() {
    let expected = "\
id
fst
snd
acc 2
push
swap
cons
app
quote 7
cur {
  snd
}
emit [acc 1]
emit
  cur {
    id
  }
lift
arena
merge
call
branch {
  id
} else {
  fst
}
recclos[1] {
  snd
  --
}
pack 3
switch {
  tag 0 (bind) =>
    snd
  default =>
    id
}
prim Add
fail \"boom\"
merge_branch
merge_switch[2 arms + default]
merge_rec[2]
";
    assert_eq!(disassemble(&full_instruction_set()), expected);
}

#[test]
fn full_instruction_set_really_is_full() {
    // The census of the golden program must mention every opcode the
    // machine defines, so the golden test cannot silently go stale.
    let c = census(&full_instruction_set());
    for name in OPCODE_NAMES {
        assert!(c.contains_key(name), "golden program misses `{name}`");
    }
}
