//! Golden test: the disassembly of a program exercising the *entire*
//! instruction set — including the merge family, the indexed-access
//! extension, and the fused superinstructions — is pinned exactly.
//! Adding an instruction without teaching the disassembler (and this
//! test) about it fails here.
//!
//! Code is flat: the program is one segment, nested code is a labelled
//! block, and the listing shows the entry block followed by every
//! referenced block in discovery order.

use ccam::disasm::{census, disassemble};
use ccam::instr::{Instr, MergeSwitchSpec, PrimOp, SwitchArm, SwitchTable, OPCODE_NAMES};
use ccam::seg::{BlockId, CodeSeg};
use ccam::value::Value;
use std::rc::Rc;

/// One instance of every instruction, in opcode-table order where the
/// rendering allows it, laid out flat in one segment.
fn full_instruction_set() -> (CodeSeg, BlockId) {
    let seg = CodeSeg::new();
    let cur_body = seg.add_block(vec![Instr::Snd]);
    let emitted_body = seg.add_block(vec![Instr::Id]);
    let then_arm = seg.add_block(vec![Instr::Id]);
    let else_arm = seg.add_block(vec![Instr::Fst]);
    let rec_body = seg.add_block(vec![Instr::Snd]);
    let switch_arm = seg.add_block(vec![Instr::Snd]);
    let switch_default = seg.add_block(vec![Instr::Id]);
    let entry = seg.add_block(vec![
        Instr::Id,
        Instr::Fst,
        Instr::Snd,
        Instr::Acc(2),
        Instr::Push,
        Instr::Swap,
        Instr::ConsPair,
        Instr::App,
        Instr::Quote(Value::Int(7)),
        Instr::Cur(cur_body),
        Instr::Emit(Box::new(Instr::Acc(1))),
        Instr::Emit(Box::new(Instr::Cur(emitted_body))),
        Instr::LiftV,
        Instr::NewArena,
        Instr::Merge,
        Instr::Call,
        Instr::Branch(then_arm, else_arm),
        Instr::RecClos(Rc::new(vec![rec_body])),
        Instr::Pack(3),
        Instr::Switch(Rc::new(SwitchTable {
            arms: vec![SwitchArm {
                tag: 0,
                bind: true,
                code: switch_arm,
            }],
            default: Some(switch_default),
        })),
        Instr::Prim(PrimOp::Add),
        Instr::Fail("boom".into()),
        Instr::MergeBranch,
        Instr::MergeSwitch(Rc::new(MergeSwitchSpec {
            arms: vec![(0, false), (1, true)],
            default: true,
        })),
        Instr::MergeRec(2),
        Instr::PushAcc(1),
        Instr::QuoteCons(Value::Int(8)),
        Instr::SwapCons,
        Instr::ConsApp,
        Instr::AccApp(0),
        Instr::PushQuote(Value::Bool(true)),
        Instr::EnvCons,
    ]);
    (seg, entry)
}

#[test]
fn disassembly_of_the_full_instruction_set_is_golden() {
    let expected = "\
L0:
  id
  fst
  snd
  acc 2
  push
  swap
  cons
  app
  quote 7
  cur L1
  emit [acc 1]
  emit [cur L2]
  lift
  arena
  merge
  call
  branch L3 else L4
  recclos[L5]
  pack 3
  switch { tag 0 (bind) => L6, default => L7 }
  prim Add
  fail \"boom\"
  merge_branch
  merge_switch[2 arms + default]
  merge_rec[2]
  push_acc 1
  quote_cons 8
  swap_cons
  cons_app
  acc_app 0
  push_quote true
  env_cons

L1:
  snd

L2:
  id

L3:
  id

L4:
  fst

L5:
  snd

L6:
  snd

L7:
  id
";
    let (seg, entry) = full_instruction_set();
    assert_eq!(disassemble(&seg, entry), expected);
}

#[test]
fn full_instruction_set_really_is_full() {
    // The census of the golden program must mention every opcode the
    // machine defines, so the golden test cannot silently go stale.
    let (seg, entry) = full_instruction_set();
    let c = census(&seg, entry);
    for name in OPCODE_NAMES {
        assert!(c.contains_key(name), "golden program misses `{name}`");
    }
}

#[test]
fn listing_is_independent_of_block_layout() {
    // The same program at different segment offsets (and with unrelated
    // blocks interleaved) must produce the identical listing — labels are
    // discovery-ordered, not raw block ids.
    let (seg_a, entry_a) = full_instruction_set();
    let shifted = CodeSeg::new();
    shifted.add_block(vec![Instr::Id; 13]);
    let entry_b = shifted.import_block(&seg_a, entry_a);
    assert_eq!(disassemble(&seg_a, entry_a), disassemble(&shifted, entry_b));
}
