//! Property tests for the payload wire codec: arbitrary portable-safe
//! values and programs must survive extract → encode → decode → hydrate
//! structurally intact, encoding must be a bijection on its image
//! (`encode(decode(bytes)) == bytes`), and hostile bytes (truncations,
//! single-byte corruptions) must produce typed errors, never panics.

use ccam::instr::{Instr, PrimOp};
use ccam::machine::Machine;
use ccam::portable::PortableValue;
use ccam::seg::CodeSeg;
use ccam::value::Value;
use ccam::wire::{decode_value, encode_value};
use proptest::prelude::*;

/// Arbitrary portable-safe values: everything `extract` accepts except
/// closures (those are exercised by the program strategy below), with
/// sharing introduced explicitly.
fn portable_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,12}".prop_map(Value::str),
        (0u32..8).prop_map(|tag| Value::Con(tag, None)),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            (0u32..8, inner.clone())
                .prop_map(|(tag, v)| Value::Con(tag, Some(std::rc::Rc::new(v)))),
            // Shared spine: cloning a Value shares its Rc-backed nodes,
            // so both halves of this pair alias the same subgraph.
            inner.clone().prop_map(|v| Value::pair(v.clone(), v)),
        ]
    })
}

/// A closure value over a random arithmetic body: `fn x => (x + k) * m`.
fn closure_value() -> impl Strategy<Value = Value> {
    ((-100i64..100), (-10i64..10)).prop_map(|(k, m)| {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![
            Instr::Snd,
            Instr::Push,
            Instr::Quote(Value::Int(k)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
            Instr::Push,
            Instr::Quote(Value::Int(m)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Mul),
        ]);
        let mut machine = Machine::new();
        machine
            .run(seg.entry(vec![Instr::Cur(body)]), Value::Unit)
            .expect("closure builds")
    })
}

fn roundtrip(portable: &PortableValue) -> (Vec<u8>, PortableValue) {
    let bytes = encode_value(portable);
    let back = decode_value(&bytes).expect("encoded bytes decode");
    (bytes, back)
}

proptest! {
    #[test]
    fn values_survive_the_wire(v in portable_value()) {
        let portable = PortableValue::extract(&v).expect("portable-safe by construction");
        let (bytes, back) = roundtrip(&portable);
        // Structural identity after hydration…
        prop_assert_eq!(v.structural_eq(&back.hydrate()), Some(true));
        // …and the encoding is canonical: re-encoding the decode is
        // byte-identical.
        prop_assert_eq!(encode_value(&back), bytes);
    }

    #[test]
    fn closures_survive_the_wire_and_still_run(
        v in closure_value(),
        arg in -1000i64..1000,
    ) {
        let portable = PortableValue::extract(&v).expect("closures are portable");
        let (bytes, back) = roundtrip(&portable);
        prop_assert_eq!(encode_value(&back), bytes);
        // The hydrated closure computes the same function: apply both to
        // the same argument via ⟨closure, arg⟩; app.
        let apply = |f: Value| -> i64 {
            let seg = CodeSeg::new();
            let entry = seg.entry(vec![Instr::App]);
            let input = Value::pair(f, Value::Int(arg));
            match Machine::new().run(entry, input).expect("closure runs") {
                Value::Int(n) => n,
                other => panic!("non-integer result {other}"),
            }
        };
        prop_assert_eq!(apply(v), apply(back.hydrate()));
    }

    #[test]
    fn truncations_error_and_never_panic(v in portable_value(), cut in 0usize..4096) {
        let portable = PortableValue::extract(&v).unwrap();
        let bytes = encode_value(&portable);
        let cut = cut % bytes.len().max(1);
        prop_assert!(decode_value(&bytes[..cut]).is_err());
    }

    #[test]
    fn corruptions_error_or_decode_but_never_panic(
        v in portable_value(),
        pos in 0usize..4096,
        mask in 0u8..255,
    ) {
        let portable = PortableValue::extract(&v).unwrap();
        let mut bytes = encode_value(&portable);
        let pos = pos % bytes.len().max(1);
        bytes[pos] ^= mask + 1; // a non-zero flip

        // The payload codec has no checksum (the container adds it), so
        // some flips still decode; the property is totality, not
        // rejection: decode returns, and a successful decode re-encodes
        // without panicking.
        if let Ok(back) = decode_value(&bytes) {
            let _ = encode_value(&back);
            let _ = back.hydrate();
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(back) = decode_value(&bytes) {
            let _ = back.hydrate();
        }
    }
}
