//! Machine invariants under randomly composed (well-formed) instruction
//! sequences: statistics are coherent, the validator is sound, and
//! tree-shaped expressions lowered to flat segment code agree with a
//! direct reference interpreter.

use ccam::instr::{validate, Instr, PrimOp};
use ccam::machine::Machine;
use ccam::seg::CodeSeg;
use ccam::value::Value;
use proptest::prelude::*;

/// Random straight-line arithmetic programs: each block keeps the
/// invariant "top of stack is an integer".
fn arith_block() -> impl Strategy<Value = Vec<Instr>> {
    prop_oneof![
        (-100i64..100).prop_map(|n| vec![Instr::Quote(Value::Int(n))]),
        (-50i64..50).prop_map(|n| vec![
            Instr::Push,
            Instr::Quote(Value::Int(n)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]),
        (1i64..50).prop_map(|n| vec![
            Instr::Push,
            Instr::Quote(Value::Int(n)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Mul),
        ]),
        Just(vec![Instr::Prim(PrimOp::Neg)]),
        Just(vec![Instr::Id]),
    ]
}

fn arith_program() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(arith_block(), 1..30)
        .prop_map(|blocks| blocks.into_iter().flatten().collect())
}

/// A tree-shaped integer expression — the shape the compiler used to
/// manipulate directly, now lowered to flat blocks by [`lower`].
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    If(bool, Box<Expr>, Box<Expr>),
    /// `(fn x => x + k) e` — exercises closure blocks and `app`.
    CallInc(i64, Box<Expr>),
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = (-100i64..100).prop_map(Expr::Lit);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            (any::<bool>(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If(
                c,
                Box::new(t),
                Box::new(e)
            )),
            ((-50i64..50), inner.clone()).prop_map(|(k, e)| Expr::CallInc(k, Box::new(e))),
        ]
    })
}

/// The reference interpreter: direct evaluation of the tree.
fn reference(e: &Expr) -> i64 {
    match e {
        Expr::Lit(n) => *n,
        Expr::Add(a, b) => reference(a).wrapping_add(reference(b)),
        Expr::Mul(a, b) => reference(a).wrapping_mul(reference(b)),
        Expr::Neg(a) => reference(a).wrapping_neg(),
        Expr::If(c, t, e) => {
            if *c {
                reference(t)
            } else {
                reference(e)
            }
        }
        Expr::CallInc(k, e) => reference(e).wrapping_add(*k),
    }
}

/// Tree → flat lowering: nested control (branch arms, closure bodies)
/// becomes blocks of `seg`; everything else is straight-line code in the
/// current buffer.
fn lower(e: &Expr, seg: &CodeSeg, out: &mut Vec<Instr>) {
    match e {
        Expr::Lit(n) => out.push(Instr::Quote(Value::Int(*n))),
        Expr::Add(a, b) | Expr::Mul(a, b) => {
            out.push(Instr::Push);
            lower(a, seg, out);
            out.push(Instr::Swap);
            lower(b, seg, out);
            out.push(Instr::ConsPair);
            out.push(Instr::Prim(if matches!(e, Expr::Add(_, _)) {
                PrimOp::Add
            } else {
                PrimOp::Mul
            }));
        }
        Expr::Neg(a) => {
            lower(a, seg, out);
            out.push(Instr::Prim(PrimOp::Neg));
        }
        Expr::If(c, t, f) => {
            let mut then_code = Vec::new();
            lower(t, seg, &mut then_code);
            let mut else_code = Vec::new();
            lower(f, seg, &mut else_code);
            out.push(Instr::Push);
            out.push(Instr::Quote(Value::Bool(*c)));
            out.push(Instr::ConsPair);
            out.push(Instr::Branch(
                seg.add_block(then_code),
                seg.add_block(else_code),
            ));
        }
        Expr::CallInc(k, a) => {
            // ⟨cur body, arg⟩; app  where body = snd + k.
            let body = seg.add_block(vec![
                Instr::Push,
                Instr::Snd,
                Instr::Swap,
                Instr::Quote(Value::Int(*k)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Add),
            ]);
            out.push(Instr::Push);
            out.push(Instr::Cur(body));
            out.push(Instr::Swap);
            lower(a, seg, out);
            out.push(Instr::ConsPair);
            out.push(Instr::App);
        }
    }
}

proptest! {
    #[test]
    fn arithmetic_programs_never_fail(prog in arith_program()) {
        let len = prog.len() as u64;
        let seg = CodeSeg::new();
        validate(&seg, &prog).unwrap();
        let mut m = Machine::new();
        let out = m.run(seg.entry(prog), Value::Int(0)).unwrap();
        prop_assert!(matches!(out, Value::Int(_)));
        // One reduction per executed instruction.
        prop_assert_eq!(m.stats().steps, len);
    }

    #[test]
    fn fuel_bound_is_respected(prog in arith_program(), fuel in 1u64..20) {
        let len = prog.len() as u64;
        let mut m = Machine::with_fuel(fuel);
        match m.run(CodeSeg::new().entry(prog), Value::Int(0)) {
            Ok(_) => prop_assert!(len <= fuel),
            Err(e) => {
                prop_assert!(len > fuel, "unexpected error {e} for {len} <= {fuel}");
                prop_assert!(m.stats().steps <= fuel + 1);
            }
        }
    }

    #[test]
    fn generation_and_call_round_trips_values(n in -1000i64..1000) {
        // lift n into an arena, call it: identity on values, one emit,
        // one arena, one call.
        let prog = vec![
            Instr::Quote(Value::Int(n)),
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::LiftV,
            Instr::Call,
        ];
        let mut m = Machine::new();
        let out = m.run(CodeSeg::new().entry(prog), Value::Unit).unwrap();
        prop_assert!(matches!(out, Value::Int(x) if x == n));
        let s = m.stats();
        prop_assert_eq!(s.emitted, 1);
        prop_assert_eq!(s.arenas, 1);
        prop_assert_eq!(s.calls, 1);
    }

    #[test]
    fn flat_lowering_agrees_with_the_reference_interpreter(e in expr()) {
        let seg = CodeSeg::new();
        let mut code = Vec::new();
        lower(&e, &seg, &mut code);
        validate(&seg, &code).unwrap();
        let want = reference(&e);
        // Plain execution agrees…
        let out = Machine::new().run(seg.entry(code.clone()), Value::Unit).unwrap();
        prop_assert!(matches!(out, Value::Int(x) if x == want), "got {out}, want {want}");
        // …and so does the peephole-optimized rendering.
        let opt = ccam::opt::peephole(&seg, &code);
        let out = Machine::new().run(seg.entry(opt), Value::Unit).unwrap();
        prop_assert!(matches!(out, Value::Int(x) if x == want), "optimized: got {out}, want {want}");
    }

    #[test]
    fn structural_eq_is_reflexive_and_symmetric(a in -50i64..50, b in -50i64..50) {
        let v1 = Value::tuple(vec![Value::Int(a), Value::Bool(a > 0), Value::Int(b)]);
        let v2 = Value::tuple(vec![Value::Int(a), Value::Bool(a > 0), Value::Int(b)]);
        prop_assert_eq!(v1.structural_eq(&v1), Some(true));
        prop_assert_eq!(v1.structural_eq(&v2), Some(true));
        prop_assert_eq!(v2.structural_eq(&v1), Some(true));
        let v3 = Value::tuple(vec![Value::Int(a + 1), Value::Bool(a > 0), Value::Int(b)]);
        prop_assert_eq!(v1.structural_eq(&v3), Some(false));
    }
}
