//! Machine invariants under randomly composed (well-formed) instruction
//! sequences: statistics are coherent and the validator is sound.

use ccam::instr::{validate, Instr, PrimOp};
use ccam::machine::Machine;
use ccam::value::Value;
use proptest::prelude::*;
use std::rc::Rc;

/// Random straight-line arithmetic programs: each block keeps the
/// invariant "top of stack is an integer".
fn arith_block() -> impl Strategy<Value = Vec<Instr>> {
    prop_oneof![
        (-100i64..100).prop_map(|n| vec![Instr::Quote(Value::Int(n))]),
        (-50i64..50).prop_map(|n| vec![
            Instr::Push,
            Instr::Quote(Value::Int(n)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]),
        (1i64..50).prop_map(|n| vec![
            Instr::Push,
            Instr::Quote(Value::Int(n)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Mul),
        ]),
        Just(vec![Instr::Prim(PrimOp::Neg)]),
        Just(vec![Instr::Id]),
    ]
}

fn arith_program() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(arith_block(), 1..30)
        .prop_map(|blocks| blocks.into_iter().flatten().collect())
}

proptest! {
    #[test]
    fn arithmetic_programs_never_fail(prog in arith_program()) {
        let len = prog.len() as u64;
        validate(&prog).unwrap();
        let mut m = Machine::new();
        let out = m.run(Rc::new(prog), Value::Int(0)).unwrap();
        prop_assert!(matches!(out, Value::Int(_)));
        // One reduction per executed instruction.
        prop_assert_eq!(m.stats().steps, len);
    }

    #[test]
    fn fuel_bound_is_respected(prog in arith_program(), fuel in 1u64..20) {
        let len = prog.len() as u64;
        let mut m = Machine::with_fuel(fuel);
        match m.run(Rc::new(prog), Value::Int(0)) {
            Ok(_) => prop_assert!(len <= fuel),
            Err(e) => {
                prop_assert!(len > fuel, "unexpected error {e} for {len} <= {fuel}");
                prop_assert!(m.stats().steps <= fuel + 1);
            }
        }
    }

    #[test]
    fn generation_and_call_round_trips_values(n in -1000i64..1000) {
        // lift n into an arena, call it: identity on values, one emit,
        // one arena, one call.
        let prog = vec![
            Instr::Quote(Value::Int(n)),
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::LiftV,
            Instr::Call,
        ];
        let mut m = Machine::new();
        let out = m.run(Rc::new(prog), Value::Unit).unwrap();
        prop_assert!(matches!(out, Value::Int(x) if x == n));
        let s = m.stats();
        prop_assert_eq!(s.emitted, 1);
        prop_assert_eq!(s.arenas, 1);
        prop_assert_eq!(s.calls, 1);
    }

    #[test]
    fn structural_eq_is_reflexive_and_symmetric(a in -50i64..50, b in -50i64..50) {
        let v1 = Value::tuple(vec![Value::Int(a), Value::Bool(a > 0), Value::Int(b)]);
        let v2 = Value::tuple(vec![Value::Int(a), Value::Bool(a > 0), Value::Int(b)]);
        prop_assert_eq!(v1.structural_eq(&v1), Some(true));
        prop_assert_eq!(v1.structural_eq(&v2), Some(true));
        prop_assert_eq!(v2.structural_eq(&v1), Some(true));
        let v3 = Value::tuple(vec![Value::Int(a + 1), Value::Bool(a > 0), Value::Int(b)]);
        prop_assert_eq!(v1.structural_eq(&v3), Some(false));
    }
}
