//! Compilation contexts: the variable environment layout and the
//! early/late division used by the generating translation.
//!
//! The CAM environment is a left-nested pair spine: binding `x` turns the
//! environment `E` into the value `(E, x)`. A variable's access path is
//! therefore `fst^k; snd`. Under `code`, the layout becomes **staged**:
//! the generating extension for a nested `code` captures the *generation
//! time* environment and is applied (at the outer stage's run time) to the
//! outer stage's environment, so the inner stage sees the pair
//! `(early_env, stage_env)` — see DESIGN.md §3.2 and the paper's
//! closure-insertion technique (§5).

use ccam::instr::Instr;
use mlbox_ir::name::Name;
use std::rc::Rc;

/// Whether a context entry is an ordinary value variable (Γ) or a code
/// variable (Δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Value variable.
    Val,
    /// Code variable.
    Cogen,
}

/// How the *early* (generation-time) environment value is shaped, for
/// entries `0..early_count`.
#[derive(Debug, Clone)]
pub enum Layout {
    /// A plain left-nested spine of `count` entries over an opaque base.
    Spine {
        /// Number of entries the spine covers.
        count: usize,
    },
    /// The environment is `(early_env, stage_env)`: `early_env` is shaped
    /// by the inner layout and covers entries `0..split`; `stage_env` is a
    /// spine covering entries `split..count` (over an opaque base).
    Staged {
        /// Layout of the first component.
        early: Rc<Layout>,
        /// Entries covered by the first component.
        split: usize,
        /// Total entries covered.
        count: usize,
    },
}

impl Layout {
    /// Access path (as instructions) for entry `index` within an
    /// environment value of this layout.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not covered by the layout.
    pub fn path(&self, index: usize) -> Vec<Instr> {
        let mut out = Vec::new();
        self.path_into(index, &mut out);
        out
    }

    fn path_into(&self, index: usize, out: &mut Vec<Instr>) {
        match self {
            Layout::Spine { count } => {
                assert!(index < *count, "entry {index} outside spine of {count}");
                for _ in 0..(count - 1 - index) {
                    out.push(Instr::Fst);
                }
                out.push(Instr::Snd);
            }
            Layout::Staged {
                early,
                split,
                count,
            } => {
                if index >= *split {
                    assert!(index < *count, "entry {index} outside staged layout");
                    out.push(Instr::Snd);
                    for _ in 0..(count - 1 - index) {
                        out.push(Instr::Fst);
                    }
                    out.push(Instr::Snd);
                } else {
                    out.push(Instr::Fst);
                    early.path_into(index, out);
                }
            }
        }
    }

    /// Number of entries covered.
    pub fn count(&self) -> usize {
        match self {
            Layout::Spine { count } => *count,
            Layout::Staged { count, .. } => *count,
        }
    }
}

/// A compilation context: the variables in scope (oldest first), the
/// early/late division, and the layout of the early environment.
#[derive(Debug, Clone)]
pub struct Ctx {
    entries: Vec<(Name, Kind)>,
    /// Entries `0..division` are *early* (available at generation time);
    /// the rest are *late*. For ordinary (non-generating) compilation,
    /// `division == entries.len()`.
    division: usize,
    /// Layout of the early environment value (covers `0..division`).
    layout: Rc<Layout>,
}

impl Ctx {
    /// The empty top-level context.
    pub fn root() -> Ctx {
        Ctx {
            entries: Vec::new(),
            division: 0,
            layout: Rc::new(Layout::Spine { count: 0 }),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The early/late division point.
    pub fn division(&self) -> usize {
        self.division
    }

    /// Extends with a binding (late if past the division, i.e. always for
    /// generating compilation; for ordinary compilation use
    /// [`Ctx::bind_early`]).
    pub fn bind_late(&self, name: Name, kind: Kind) -> Ctx {
        let mut entries = self.entries.clone();
        entries.push((name, kind));
        Ctx {
            entries,
            division: self.division,
            layout: self.layout.clone(),
        }
    }

    /// Extends with an early binding. Only valid when no late bindings
    /// exist yet (ordinary compilation), since early entries must be
    /// contiguous.
    ///
    /// # Panics
    ///
    /// Panics if late bindings are already present.
    pub fn bind_early(&self, name: Name, kind: Kind) -> Ctx {
        assert_eq!(
            self.division,
            self.entries.len(),
            "cannot add an early binding under late bindings"
        );
        let mut entries = self.entries.clone();
        entries.push((name, kind));
        let division = entries.len();
        Ctx {
            entries,
            division,
            layout: Rc::new(Layout::Spine { count: division }),
        }
    }

    /// Enters a `code` constructor: everything currently visible becomes
    /// early, shaped per the staged layout when late bindings exist.
    pub fn enter_code(&self) -> Ctx {
        let count = self.entries.len();
        let layout = if self.division == count {
            // No late bindings — the generation-time environment is the
            // current spine.
            Rc::new(Layout::Spine { count })
        } else {
            // The inner generating extension sees (early_env, stage_env).
            Rc::new(Layout::Staged {
                early: self.layout.clone(),
                split: self.division,
                count,
            })
        };
        Ctx {
            entries: self.entries.clone(),
            division: count,
            layout,
        }
    }

    /// Looks up a name, returning `(index, kind)`.
    pub fn find(&self, name: &Name) -> Option<(usize, Kind)> {
        self.entries
            .iter()
            .rposition(|(n, _)| n == name)
            .map(|i| (i, self.entries[i].1))
    }

    /// Whether the entry at `index` is early.
    pub fn is_early(&self, index: usize) -> bool {
        index < self.division
    }

    /// Access path for an early entry, against the early-environment
    /// layout.
    pub fn early_path(&self, index: usize) -> Vec<Instr> {
        debug_assert!(self.is_early(index));
        self.layout.path(index)
    }

    /// Access path for a late entry, relative to the run-time environment
    /// spine of the generated code (never crosses the division).
    pub fn late_path(&self, index: usize) -> Vec<Instr> {
        debug_assert!(!self.is_early(index));
        let n = self.entries.len();
        let mut out = Vec::with_capacity(n - index);
        for _ in 0..(n - 1 - index) {
            out.push(Instr::Fst);
        }
        out.push(Instr::Snd);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_ir::name::NameGen;

    fn fsts(path: &[Instr]) -> usize {
        path.iter().filter(|i| matches!(i, Instr::Fst)).count()
    }

    #[test]
    fn spine_paths() {
        let mut g = NameGen::new();
        let ctx = Ctx::root()
            .bind_early(g.fresh("a"), Kind::Val)
            .bind_early(g.fresh("b"), Kind::Val)
            .bind_early(g.fresh("c"), Kind::Val);
        // c (index 2, innermost): snd. a (index 0): fst;fst;snd.
        assert_eq!(ctx.early_path(2).len(), 1);
        assert_eq!(fsts(&ctx.early_path(0)), 2);
    }

    #[test]
    fn late_paths_stay_within_late_region() {
        let mut g = NameGen::new();
        let a = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a.clone(), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .bind_late(g.fresh("y"), Kind::Val);
        // y: snd; x: fst;snd — never more Fsts than the late depth.
        let (yi, _) = ctx.find(&ctx.entries[2].0.clone()).unwrap();
        assert_eq!(fsts(&ctx.late_path(yi)), 0);
        assert_eq!(fsts(&ctx.late_path(1)), 1);
    }

    #[test]
    fn staged_layout_paths() {
        let mut g = NameGen::new();
        let a = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a.clone(), Kind::Cogen)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .enter_code();
        // Inside the inner code, all 2 entries are early.
        assert_eq!(ctx.division(), 2);
        // a: via the early side: fst; snd.
        let pa = ctx.early_path(0);
        assert!(matches!(pa[0], Instr::Fst));
        assert!(matches!(pa[1], Instr::Snd));
        // x: via the stage side: snd; snd.
        let px = ctx.early_path(1);
        assert!(matches!(px[0], Instr::Snd));
        assert!(matches!(px[1], Instr::Snd));
    }

    #[test]
    fn shadowing_finds_innermost() {
        let mut g = NameGen::new();
        let a1 = g.fresh("a");
        let a2 = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a1.clone(), Kind::Val)
            .bind_early(a2.clone(), Kind::Val);
        assert_eq!(ctx.find(&a2).unwrap().0, 1);
        assert_eq!(ctx.find(&a1).unwrap().0, 0);
    }
}
