//! Compilation contexts: the variable environment layout and the
//! early/late division used by the generating translation.
//!
//! The CAM environment is a left-nested pair spine: binding `x` turns the
//! environment `E` into the value `(E, x)`. A variable's access path is
//! therefore `fst^k; snd`. Under `code`, the layout becomes **staged**:
//! the generating extension for a nested `code` captures the *generation
//! time* environment and is applied (at the outer stage's run time) to the
//! outer stage's environment, so the inner stage sees the pair
//! `(early_env, stage_env)` — see DESIGN.md §3.2 and the paper's
//! closure-insertion technique (§5).

use ccam::instr::Instr;
use mlbox_ir::name::Name;
use std::rc::Rc;

/// Whether a context entry is an ordinary value variable (Γ) or a code
/// variable (Δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Value variable.
    Val,
    /// Code variable.
    Cogen,
}

/// How variable accesses are compiled against the environment.
///
/// [`PairSpine`](EnvMode::PairSpine) and [`Indexed`](EnvMode::Indexed)
/// share the left-nested pair-spine *representation* and differ only in
/// the instruction sequences that walk it. [`Flat`](EnvMode::Flat) also
/// changes the representation: bindings extend contiguous frames
/// ([`ccam::value::Frame`]) via [`Instr::EnvCons`], so `acc n` is a
/// bounds-checked slot index instead of an O(n) spine walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvMode {
    /// The paper's access sequences: `fst^k; snd` chains, one reduction
    /// step per link. This is the default — Table 1's reduction-step
    /// counts are measured in this mode.
    #[default]
    PairSpine,
    /// Fused indexed access: each spine walk compiles to a single
    /// [`Instr::Acc`] dispatch (`acc n` ≡ `fst^n; snd`). Cheaper on deep
    /// environments, but no longer step-for-step comparable with the
    /// paper's cost model.
    Indexed,
    /// Indexed access over contiguous frames: paths render exactly as in
    /// [`Indexed`](EnvMode::Indexed) mode (the machine resolves `acc n`
    /// against frames and pairs alike), but environment-extension sites
    /// compile to [`Instr::EnvCons`] so the environment grows as a
    /// `Vec`-backed frame and each access is O(1). Step counts equal
    /// indexed mode's; the win is wall-clock time.
    Flat,
}

/// How the *early* (generation-time) environment value is shaped, for
/// entries `0..early_count`.
#[derive(Debug, Clone)]
pub enum Layout {
    /// A plain left-nested spine of `count` entries over an opaque base.
    Spine {
        /// Number of entries the spine covers.
        count: usize,
    },
    /// The environment is `(early_env, stage_env)`: `early_env` is shaped
    /// by the inner layout and covers entries `0..split`; `stage_env` is a
    /// spine covering entries `split..count` (over an opaque base).
    Staged {
        /// Layout of the first component.
        early: Rc<Layout>,
        /// Entries covered by the first component.
        split: usize,
        /// Total entries covered.
        count: usize,
    },
}

impl Layout {
    /// Access path (as instructions) for entry `index` within an
    /// environment value of this layout, in the given access mode. This is
    /// the single source of truth for access-path compilation: both the
    /// ordinary and the generating translation obtain every variable
    /// access from here (via [`Ctx::early_path`] / [`Ctx::late_path`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is not covered by the layout.
    pub fn path(&self, index: usize, mode: EnvMode) -> Vec<Instr> {
        let mut out = Vec::new();
        self.path_into(index, mode, &mut out);
        out
    }

    fn path_into(&self, index: usize, mode: EnvMode, out: &mut Vec<Instr>) {
        match mode {
            EnvMode::PairSpine => self.spine_path_into(index, out),
            // Flat mode's accesses render exactly as indexed mode's: the
            // machine resolves `acc n` against frames and pairs alike,
            // so only extension sites differ (see the compiler).
            EnvMode::Indexed | EnvMode::Flat => self.indexed_path_into(index, 0, out),
        }
    }

    fn spine_path_into(&self, index: usize, out: &mut Vec<Instr>) {
        match self {
            Layout::Spine { count } => {
                assert!(index < *count, "entry {index} outside spine of {count}");
                for _ in 0..(count - 1 - index) {
                    out.push(Instr::Fst);
                }
                out.push(Instr::Snd);
            }
            Layout::Staged {
                early,
                split,
                count,
            } => {
                if index >= *split {
                    assert!(index < *count, "entry {index} outside staged layout");
                    out.push(Instr::Snd);
                    for _ in 0..(count - 1 - index) {
                        out.push(Instr::Fst);
                    }
                    out.push(Instr::Snd);
                } else {
                    out.push(Instr::Fst);
                    early.spine_path_into(index, out);
                }
            }
        }
    }

    /// The indexed rendering of the same walk. `pending` counts `fst`s
    /// owed by enclosing `Staged` layouts (descents into the early
    /// component); since `acc n` ≡ `fst^n; snd`, they fuse into the next
    /// `acc` instead of being emitted separately.
    fn indexed_path_into(&self, index: usize, pending: usize, out: &mut Vec<Instr>) {
        match self {
            Layout::Spine { count } => {
                assert!(index < *count, "entry {index} outside spine of {count}");
                out.push(Instr::Acc(pending + count - 1 - index));
            }
            Layout::Staged {
                early,
                split,
                count,
            } => {
                if index >= *split {
                    assert!(index < *count, "entry {index} outside staged layout");
                    // fst^pending; snd reaches the stage environment, then
                    // one more fused walk reaches the entry.
                    out.push(Instr::Acc(pending));
                    out.push(Instr::Acc(count - 1 - index));
                } else {
                    early.indexed_path_into(index, pending + 1, out);
                }
            }
        }
    }

    /// Path from a value of this layout to its opaque *base*: walk past
    /// every entry of the spine (`fst^count`). The generating translation
    /// uses this to project `lenv` out of the generation state, whose
    /// stack shape is itself a left-nested spine over `lenv`. There is no
    /// trailing `snd`, so the walk has no fused rendering.
    ///
    /// # Panics
    ///
    /// Panics on a [`Layout::Staged`] layout, which has no spine base.
    pub fn base_path_into(&self, out: &mut Vec<Instr>) {
        match self {
            Layout::Spine { count } => {
                for _ in 0..*count {
                    out.push(Instr::Fst);
                }
            }
            Layout::Staged { .. } => panic!("a staged layout has no spine base"),
        }
    }

    /// Number of entries covered.
    pub fn count(&self) -> usize {
        match self {
            Layout::Spine { count } => *count,
            Layout::Staged { count, .. } => *count,
        }
    }
}

/// A compilation context: the variables in scope (oldest first), the
/// early/late division, and the layout of the early environment.
#[derive(Debug, Clone)]
pub struct Ctx {
    entries: Vec<(Name, Kind)>,
    /// Entries `0..division` are *early* (available at generation time);
    /// the rest are *late*. For ordinary (non-generating) compilation,
    /// `division == entries.len()`.
    division: usize,
    /// Layout of the early environment value (covers `0..division`).
    layout: Rc<Layout>,
    /// How access paths are rendered ([`EnvMode::PairSpine`] by default).
    mode: EnvMode,
}

impl Ctx {
    /// The empty top-level context, in the default pair-spine access mode.
    pub fn root() -> Ctx {
        Ctx::root_with(EnvMode::default())
    }

    /// The empty top-level context with an explicit access mode.
    pub fn root_with(mode: EnvMode) -> Ctx {
        Ctx {
            entries: Vec::new(),
            division: 0,
            layout: Rc::new(Layout::Spine { count: 0 }),
            mode,
        }
    }

    /// The access mode this context compiles with.
    pub fn mode(&self) -> EnvMode {
        self.mode
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The early/late division point.
    pub fn division(&self) -> usize {
        self.division
    }

    /// Extends with a binding (late if past the division, i.e. always for
    /// generating compilation; for ordinary compilation use
    /// [`Ctx::bind_early`]).
    pub fn bind_late(&self, name: Name, kind: Kind) -> Ctx {
        let mut entries = self.entries.clone();
        entries.push((name, kind));
        Ctx {
            entries,
            division: self.division,
            layout: self.layout.clone(),
            mode: self.mode,
        }
    }

    /// Extends with an early binding. Only valid when no late bindings
    /// exist yet (ordinary compilation), since early entries must be
    /// contiguous.
    ///
    /// # Panics
    ///
    /// Panics if late bindings are already present.
    pub fn bind_early(&self, name: Name, kind: Kind) -> Ctx {
        assert_eq!(
            self.division,
            self.entries.len(),
            "cannot add an early binding under late bindings"
        );
        let mut entries = self.entries.clone();
        entries.push((name, kind));
        let division = entries.len();
        Ctx {
            entries,
            division,
            layout: Rc::new(Layout::Spine { count: division }),
            mode: self.mode,
        }
    }

    /// Enters a `code` constructor: everything currently visible becomes
    /// early, shaped per the staged layout when late bindings exist.
    pub fn enter_code(&self) -> Ctx {
        let count = self.entries.len();
        let layout = if self.division == count {
            // No late bindings — the generation-time environment is the
            // current spine.
            Rc::new(Layout::Spine { count })
        } else {
            // The inner generating extension sees (early_env, stage_env).
            Rc::new(Layout::Staged {
                early: self.layout.clone(),
                split: self.division,
                count,
            })
        };
        Ctx {
            entries: self.entries.clone(),
            division: count,
            layout,
            mode: self.mode,
        }
    }

    /// Looks up a name, returning `(index, kind)`.
    pub fn find(&self, name: &Name) -> Option<(usize, Kind)> {
        self.entries
            .iter()
            .rposition(|(n, _)| n == name)
            .map(|i| (i, self.entries[i].1))
    }

    /// Whether the entry at `index` is early.
    pub fn is_early(&self, index: usize) -> bool {
        index < self.division
    }

    /// Access path for an early entry, against the early-environment
    /// layout.
    pub fn early_path(&self, index: usize) -> Vec<Instr> {
        debug_assert!(self.is_early(index));
        self.layout.path(index, self.mode)
    }

    /// Access path for a late entry, relative to the run-time environment
    /// spine of the generated code (never crosses the division): the
    /// generated code's environment is a spine of all entries over an
    /// opaque base, and late indices stay strictly inside it.
    pub fn late_path(&self, index: usize) -> Vec<Instr> {
        debug_assert!(!self.is_early(index));
        let n = self.entries.len();
        Layout::Spine { count: n }.path(index, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_ir::name::NameGen;

    fn fsts(path: &[Instr]) -> usize {
        path.iter().filter(|i| matches!(i, Instr::Fst)).count()
    }

    #[test]
    fn spine_paths() {
        let mut g = NameGen::new();
        let ctx = Ctx::root()
            .bind_early(g.fresh("a"), Kind::Val)
            .bind_early(g.fresh("b"), Kind::Val)
            .bind_early(g.fresh("c"), Kind::Val);
        // c (index 2, innermost): snd. a (index 0): fst;fst;snd.
        assert_eq!(ctx.early_path(2).len(), 1);
        assert_eq!(fsts(&ctx.early_path(0)), 2);
    }

    #[test]
    fn late_paths_stay_within_late_region() {
        let mut g = NameGen::new();
        let a = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a.clone(), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .bind_late(g.fresh("y"), Kind::Val);
        // y: snd; x: fst;snd — never more Fsts than the late depth.
        let (yi, _) = ctx.find(&ctx.entries[2].0.clone()).unwrap();
        assert_eq!(fsts(&ctx.late_path(yi)), 0);
        assert_eq!(fsts(&ctx.late_path(1)), 1);
    }

    #[test]
    fn staged_layout_paths() {
        let mut g = NameGen::new();
        let a = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a.clone(), Kind::Cogen)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .enter_code();
        // Inside the inner code, all 2 entries are early.
        assert_eq!(ctx.division(), 2);
        // a: via the early side: fst; snd.
        let pa = ctx.early_path(0);
        assert!(matches!(pa[0], Instr::Fst));
        assert!(matches!(pa[1], Instr::Snd));
        // x: via the stage side: snd; snd.
        let px = ctx.early_path(1);
        assert!(matches!(px[0], Instr::Snd));
        assert!(matches!(px[1], Instr::Snd));
    }

    #[test]
    fn indexed_spine_paths_are_single_acc() {
        let mut g = NameGen::new();
        let ctx = Ctx::root_with(EnvMode::Indexed)
            .bind_early(g.fresh("a"), Kind::Val)
            .bind_early(g.fresh("b"), Kind::Val)
            .bind_early(g.fresh("c"), Kind::Val);
        assert!(matches!(ctx.early_path(2)[..], [Instr::Acc(0)]));
        assert!(matches!(ctx.early_path(0)[..], [Instr::Acc(2)]));
    }

    #[test]
    fn indexed_late_paths_are_single_acc() {
        let mut g = NameGen::new();
        let ctx = Ctx::root_with(EnvMode::Indexed)
            .bind_early(g.fresh("a"), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .bind_late(g.fresh("y"), Kind::Val);
        assert!(matches!(ctx.late_path(2)[..], [Instr::Acc(0)]));
        assert!(matches!(ctx.late_path(1)[..], [Instr::Acc(1)]));
    }

    #[test]
    fn indexed_staged_paths_fuse_the_descent() {
        let mut g = NameGen::new();
        let ctx = Ctx::root_with(EnvMode::Indexed)
            .bind_early(g.fresh("a"), Kind::Cogen)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .enter_code();
        // a, on the early side: fst; snd fuses to acc 1.
        assert!(matches!(ctx.early_path(0)[..], [Instr::Acc(1)]));
        // x, on the stage side: snd; snd renders as acc 0; acc 0.
        assert!(matches!(
            ctx.early_path(1)[..],
            [Instr::Acc(0), Instr::Acc(0)]
        ));
    }

    #[test]
    fn indexed_doubly_staged_paths_carry_pending_fsts() {
        let mut g = NameGen::new();
        let ctx = Ctx::root_with(EnvMode::Indexed)
            .bind_early(g.fresh("a"), Kind::Cogen)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("y"), Kind::Val)
            .enter_code();
        // x sits on the stage side of the *inner* staged layout, reached
        // through one early descent: fst; snd; snd ≡ acc 1; acc 0.
        assert!(matches!(
            ctx.early_path(1)[..],
            [Instr::Acc(1), Instr::Acc(0)]
        ));
        // In pair-spine mode the same entry costs three instructions.
        let spine = Ctx::root()
            .bind_early(g.fresh("a"), Kind::Cogen)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("y"), Kind::Val)
            .enter_code();
        assert_eq!(spine.early_path(1).len(), 3);
    }

    #[test]
    fn flat_paths_render_exactly_like_indexed_paths() {
        let build = |mode| {
            let mut g = NameGen::new();
            Ctx::root_with(mode)
                .bind_early(g.fresh("a"), Kind::Cogen)
                .enter_code()
                .bind_late(g.fresh("x"), Kind::Val)
                .enter_code()
        };
        let flat = build(EnvMode::Flat);
        let indexed = build(EnvMode::Indexed);
        for i in 0..2 {
            assert_eq!(
                format!("{:?}", flat.early_path(i)),
                format!("{:?}", indexed.early_path(i))
            );
        }
    }

    #[test]
    fn mode_survives_binds_and_enter_code() {
        let mut g = NameGen::new();
        let ctx = Ctx::root_with(EnvMode::Indexed)
            .bind_early(g.fresh("a"), Kind::Val)
            .enter_code()
            .bind_late(g.fresh("x"), Kind::Val);
        assert_eq!(ctx.mode(), EnvMode::Indexed);
        assert_eq!(Ctx::root().mode(), EnvMode::PairSpine);
    }

    #[test]
    fn shadowing_finds_innermost() {
        let mut g = NameGen::new();
        let a1 = g.fresh("a");
        let a2 = g.fresh("a");
        let ctx = Ctx::root()
            .bind_early(a1.clone(), Kind::Val)
            .bind_early(a2.clone(), Kind::Val);
        assert_eq!(ctx.find(&a2).unwrap().0, 1);
        assert_eq!(ctx.find(&a1).unwrap().0, 0);
    }
}
