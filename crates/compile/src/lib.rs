//! Compiler from the MLbox core IR to CCAM code: the two compilation
//! relations of the paper's Figure 4 — ordinary translation and
//! generating-extension translation — extended to all core-SML constructs
//! (conditionals, recursion, datatypes, arrays, references).
//!
//! `code M` compiles to a **generating extension**: a function from arenas
//! to arenas, encoded as a sequence of `emit` instructions that synthesize
//! the specialized code of `M` at run time. Multi-stage programs (`code`
//! under `code`) use the closure-insertion technique so that no nested
//! `emit` is ever constructed (checked by `ccam::instr::validate`).
//!
//! # Examples
//!
//! ```
//! use mlbox_compile::{compile_program, ctx::Ctx};
//! use mlbox_ir::elab::Elab;
//! use mlbox_syntax::parser::parse_program;
//! use ccam::machine::Machine;
//! use ccam::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = parse_program(
//!     "fun eval c = let cogen u = c in u end;\n eval (lift (2 + 2))",
//! )?;
//! let decls = Elab::new().elab_program(&prog)?;
//! let code = compile_program(&decls)?; // a CodeRef into one flat segment
//! let out = Machine::new().run(code, Value::Unit)?;
//! assert_eq!(out.to_string(), "4");
//! # Ok(())
//! # }
//! ```

pub mod compile;
pub mod ctx;

pub use compile::{
    compile_decl, compile_expr, compile_gen, compile_program, compile_program_with, DeclEffect,
};
pub use ctx::{Ctx, EnvMode, Kind, Layout};
