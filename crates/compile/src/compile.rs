//! The two compilation relations of the paper's Figure 4, extended to the
//! full core IR.
//!
//! - [`compile_expr`] — the ordinary translation `[M]E`: code that maps an
//!   environment value (on top of the stack) to the value of `M`.
//! - [`compile_gen`] — the generating translation `[M]gen(E,LE)`: code
//!   that threads a generation state `(lenv, arena)` on top of the stack,
//!   appending the *specialized* instructions for `M` to the arena.
//!
//! Key rules (written `⟨A,B⟩` for `push; A; swap; B; cons`, and `ī` for
//! `emit(i)`):
//!
//! | source | ordinary | generating |
//! |---|---|---|
//! | `x` | `get(x,E)` | `get(x,LE)` emitted |
//! | `u` (code var) | `⟨get(u,E), arena⟩; app; call` | splice if early, emitted invoke if late |
//! | `λx.M` | `Cur([M])` | generate body into a fresh arena, `merge` |
//! | `M N` | `⟨[M],[N]⟩; app` | emitted pair + `app̄` |
//! | `code M` | `Cur([M]gen)` | closure insertion via `lift` (no nested emits) |
//! | `lift M` | `[M]; Cur(lift)` | `[M]gen; Cur(lift)` emitted |
//!
//! Compilation emits **flat code**: every function works through a
//! [`CodeBuilder`] targeting one [`CodeSeg`], and nested code (closure
//! bodies, branch arms, switch arms, recursive groups) is finished into
//! the segment as a block and referenced by [`ccam::seg::BlockId`] —
//! there is no tree of owned `Vec<Instr>`s at any point.

use crate::ctx::{Ctx, EnvMode, Kind, Layout};
use ccam::instr::{Instr, MergeSwitchSpec, PrimOp, SwitchArm, SwitchTable};
use ccam::seg::{CodeBuilder, CodeRef, CodeSeg};
use ccam::value::Value;
use mlbox_ir::core::{CExpr, CExprS, CoreDecl, Lit, Prim};
use mlbox_syntax::diag::{Diagnostic, Phase};
use mlbox_syntax::span::Span;
use std::rc::Rc;

/// Shorthand for compile-time failure.
pub type Result<T> = std::result::Result<T, Diagnostic>;

fn err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Phase::Compile, msg, span)
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(n) => Value::Int(*n),
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Str(s) => Value::str(&**s),
        Lit::Unit => Value::Unit,
    }
}

fn prim_op(p: Prim) -> PrimOp {
    match p {
        Prim::Add => PrimOp::Add,
        Prim::Sub => PrimOp::Sub,
        Prim::Mul => PrimOp::Mul,
        Prim::Div => PrimOp::Div,
        Prim::Mod => PrimOp::Mod,
        Prim::Neg => PrimOp::Neg,
        Prim::Eq => PrimOp::Eq,
        Prim::Ne => PrimOp::Ne,
        Prim::Lt => PrimOp::Lt,
        Prim::Le => PrimOp::Le,
        Prim::Gt => PrimOp::Gt,
        Prim::Ge => PrimOp::Ge,
        Prim::Concat => PrimOp::Concat,
        Prim::BitAnd => PrimOp::BitAnd,
        Prim::Not => PrimOp::Not,
        Prim::StrSize => PrimOp::StrSize,
        Prim::IntToString => PrimOp::IntToString,
        Prim::Print => PrimOp::Print,
        Prim::Ref => PrimOp::Ref,
        Prim::Deref => PrimOp::Deref,
        Prim::Assign => PrimOp::Assign,
        Prim::MkArray => PrimOp::MkArray,
        Prim::ArrSub => PrimOp::ArrSub,
        Prim::ArrUpdate => PrimOp::ArrUpdate,
        Prim::ArrLen => PrimOp::ArrLen,
    }
}

// ---------------------------------------------------------------------
// Ordinary translation [M]E
// ---------------------------------------------------------------------

/// Compiles `e` in context `ctx` to code mapping the environment value to
/// the value of `e`. The instructions are returned raw (for splicing into
/// a larger sequence); nested blocks have already been registered in
/// `seg`, so the result is only executable against that segment.
///
/// # Errors
///
/// Returns a diagnostic for variables that violate the staging discipline
/// (these are caught earlier by the type checker; the compiler re-checks
/// defensively).
pub fn compile_expr(e: &CExprS, ctx: &Ctx, seg: &CodeSeg) -> Result<Vec<Instr>> {
    let mut b = CodeBuilder::new(seg);
    expr_into(e, ctx, &mut b)?;
    Ok(b.into_instrs())
}

/// The environment-extension instruction for the mode: flat mode grows a
/// contiguous frame ([`Instr::EnvCons`]), the spine modes cons a pair.
/// Only genuine extension sites (`let`, `let cogen`, `val`/`cogen`
/// declarations) use this; scratch pairs consumed by `branch`, `switch`,
/// or `app` stay [`Instr::ConsPair`] in every mode.
fn env_cons(mode: EnvMode) -> Instr {
    match mode {
        EnvMode::Flat => Instr::EnvCons,
        EnvMode::PairSpine | EnvMode::Indexed => Instr::ConsPair,
    }
}

/// Emits `⟨A, B⟩ = push; A; swap; B; cons`.
fn pair_into(
    a: impl FnOnce(&mut CodeBuilder) -> Result<()>,
    b: impl FnOnce(&mut CodeBuilder) -> Result<()>,
    out: &mut CodeBuilder,
) -> Result<()> {
    out.push(Instr::Push);
    a(out)?;
    out.push(Instr::Swap);
    b(out)?;
    out.push(Instr::ConsPair);
    Ok(())
}

/// Compiles `e` into a block of the builder's segment (a closure body,
/// branch arm, …) and returns its id.
fn expr_block(e: &CExprS, ctx: &Ctx, out: &CodeBuilder) -> Result<ccam::seg::BlockId> {
    let mut child = out.child();
    expr_into(e, ctx, &mut child)?;
    Ok(child.finish_block())
}

fn expr_into(e: &CExprS, ctx: &Ctx, out: &mut CodeBuilder) -> Result<()> {
    let span = e.span;
    match &e.node {
        CExpr::Lit(l) => out.push(Instr::Quote(lit_value(l))),
        CExpr::Var(n) => {
            let (i, kind) = ctx
                .find(n)
                .ok_or_else(|| err(format!("unbound variable {n}"), span))?;
            if kind != Kind::Val {
                return Err(err(
                    format!("`{n}` is a code variable, not a value variable"),
                    span,
                ));
            }
            out.extend(ctx.early_path(i));
        }
        CExpr::CodeVar(u) => {
            // ⟨get(u,E), arena⟩; app; call — invoke the generator.
            let (i, kind) = ctx
                .find(u)
                .ok_or_else(|| err(format!("unbound code variable {u}"), span))?;
            if kind != Kind::Cogen {
                return Err(err(format!("`{u}` is not a code variable"), span));
            }
            let path = ctx.early_path(i);
            pair_into(
                |out| {
                    out.extend(path);
                    Ok(())
                },
                |out| {
                    out.push(Instr::NewArena);
                    Ok(())
                },
                out,
            )?;
            out.push(Instr::App);
            out.push(Instr::Call);
        }
        CExpr::Lam(p, body) => {
            let inner = ctx.bind_early(p.clone(), Kind::Val);
            let block = expr_block(body, &inner, out)?;
            out.push(Instr::Cur(block));
        }
        CExpr::App(f, a) => {
            pair_into(
                |out| expr_into(f, ctx, out),
                |out| expr_into(a, ctx, out),
                out,
            )?;
            out.push(Instr::App);
        }
        CExpr::Prim(p, args) => {
            match args.len() {
                1 => expr_into(&args[0], ctx, out)?,
                2 => pair_into(
                    |out| expr_into(&args[0], ctx, out),
                    |out| expr_into(&args[1], ctx, out),
                    out,
                )?,
                3 => pair_into(
                    |out| expr_into(&args[0], ctx, out),
                    |out| {
                        pair_into(
                            |out| expr_into(&args[1], ctx, out),
                            |out| expr_into(&args[2], ctx, out),
                            out,
                        )
                    },
                    out,
                )?,
                n => return Err(err(format!("primitive of unsupported arity {n}"), span)),
            }
            out.push(Instr::Prim(prim_op(*p)));
        }
        CExpr::If(c, t, f) => {
            out.push(Instr::Push);
            expr_into(c, ctx, out)?;
            out.push(Instr::ConsPair);
            let t = expr_block(t, ctx, out)?;
            let f = expr_block(f, ctx, out)?;
            out.push(Instr::Branch(t, f));
        }
        CExpr::Let(n, rhs, body) => {
            out.push(Instr::Push);
            expr_into(rhs, ctx, out)?;
            out.push(env_cons(ctx.mode()));
            let inner = ctx.bind_early(n.clone(), Kind::Val);
            expr_into(body, &inner, out)?;
        }
        CExpr::LetRec(defs, body) => {
            let mut group_ctx = ctx.clone();
            for def in defs.iter() {
                group_ctx = group_ctx.bind_early(def.name.clone(), Kind::Val);
            }
            let mut bodies = Vec::with_capacity(defs.len());
            for def in defs.iter() {
                let def_ctx = group_ctx.bind_early(def.param.clone(), Kind::Val);
                bodies.push(expr_block(&def.body, &def_ctx, out)?);
            }
            out.push(Instr::RecClos(Rc::new(bodies)));
            expr_into(body, &group_ctx, out)?;
        }
        CExpr::Tuple(parts) => tuple_into(parts, ctx, out)?,
        CExpr::Proj {
            index,
            arity,
            tuple,
        } => {
            expr_into(tuple, ctx, out)?;
            for _ in 0..*index {
                out.push(Instr::Snd);
            }
            if index < &(arity - 1) {
                out.push(Instr::Fst);
            }
        }
        CExpr::Con(c, payload) => match payload {
            None => out.push(Instr::Quote(Value::Con(c.0, None))),
            Some(p) => {
                expr_into(p, ctx, out)?;
                out.push(Instr::Pack(c.0));
            }
        },
        CExpr::Case {
            scrut,
            arms,
            default,
        } => {
            out.push(Instr::Push);
            expr_into(scrut, ctx, out)?;
            out.push(Instr::ConsPair);
            let mut table = SwitchTable {
                arms: Vec::with_capacity(arms.len()),
                default: None,
            };
            for arm in arms {
                let (bind, code) = match &arm.binder {
                    Some(b) => {
                        let inner = ctx.bind_early(b.clone(), Kind::Val);
                        (true, expr_block(&arm.rhs, &inner, out)?)
                    }
                    None => (false, expr_block(&arm.rhs, ctx, out)?),
                };
                table.arms.push(SwitchArm {
                    tag: arm.con.0,
                    bind,
                    code,
                });
            }
            if let Some(d) = default {
                table.default = Some(expr_block(d, ctx, out)?);
            }
            out.push(Instr::Switch(Rc::new(table)));
        }
        CExpr::Code(body) => {
            let inner = ctx.enter_code();
            let mut child = out.child();
            gen_into(body, &inner, &mut child)?;
            out.push(Instr::Cur(child.finish_block()));
        }
        CExpr::Lift(inner) => {
            expr_into(inner, ctx, out)?;
            let lift = out.seg().add_block(vec![Instr::LiftV]);
            out.push(Instr::Cur(lift));
        }
        CExpr::LetCogen(u, m, n) => {
            out.push(Instr::Push);
            expr_into(m, ctx, out)?;
            out.push(env_cons(ctx.mode()));
            let inner = ctx.bind_early(u.clone(), Kind::Cogen);
            expr_into(n, &inner, out)?;
        }
        CExpr::Fail(msg) => out.push(Instr::Fail(msg.clone())),
        CExpr::Ascribe(inner, _) => expr_into(inner, ctx, out)?,
    }
    Ok(())
}

fn tuple_into(parts: &[CExprS], ctx: &Ctx, out: &mut CodeBuilder) -> Result<()> {
    // Right-nested: (a, (b, c)).
    match parts {
        [] => unreachable!("tuples have arity >= 2"),
        [last] => expr_into(last, ctx, out),
        [head, rest @ ..] => pair_into(
            |out| expr_into(head, ctx, out),
            |out| tuple_into(rest, ctx, out),
            out,
        ),
    }
}

// ---------------------------------------------------------------------
// Generating translation [M]gen(E, LE)
// ---------------------------------------------------------------------

/// Compiles `e` as a generating-extension body: the produced code threads
/// a generation state `(lenv, arena)` on top of the stack and appends the
/// specialized code of `e` to the arena. `ctx` must have been built with
/// [`Ctx::enter_code`] at the `code` boundary. Nested blocks land in
/// `seg`, as for [`compile_expr`].
///
/// # Errors
///
/// Returns a diagnostic if an early *value* variable occurs (the modal
/// typing discipline forbids it), or for unbound variables.
pub fn compile_gen(e: &CExprS, ctx: &Ctx, seg: &CodeSeg) -> Result<Vec<Instr>> {
    let mut b = CodeBuilder::new(seg);
    gen_into(e, ctx, &mut b)?;
    Ok(b.into_instrs())
}

fn emit(i: Instr, out: &mut CodeBuilder) {
    debug_assert!(
        !matches!(i, Instr::Emit(_)),
        "nested emit constructed by the compiler"
    );
    out.push(Instr::Emit(Box::new(i)));
}

fn emit_all(instrs: Vec<Instr>, out: &mut CodeBuilder) {
    for i in instrs {
        emit(i, out);
    }
}

/// Emitted pairing: `⟨A, B⟩` with every structural instruction emitted.
fn gen_pair_into(
    a: impl FnOnce(&mut CodeBuilder) -> Result<()>,
    b: impl FnOnce(&mut CodeBuilder) -> Result<()>,
    out: &mut CodeBuilder,
) -> Result<()> {
    emit(Instr::Push, out);
    a(out)?;
    emit(Instr::Swap, out);
    b(out)?;
    emit(Instr::ConsPair, out);
    Ok(())
}

/// Projects `lenv` out of the generation state: with `depth` extra values
/// stacked above `(lenv, arena)`, the state's stack shape is a left-nested
/// spine of `depth + 1` entries over the base `lenv`, so the projection is
/// that spine's base path (`fst^(depth+1)`). Routing through [`Layout`]
/// keeps it the single authority on environment-shape walking.
fn lenv_into(depth: usize, out: &mut CodeBuilder) {
    let mut path = Vec::new();
    Layout::Spine { count: depth + 1 }.base_path_into(&mut path);
    out.extend(path);
}

/// Generates `body` into a fresh arena and leaves that arena *stacked*
/// above the current generation state: from a top value `T` (the state
/// with `depth` arenas already stacked on it), produces `(T, {body})`.
fn subgen_into(
    body: impl FnOnce(&mut CodeBuilder) -> Result<()>,
    depth: usize,
    out: &mut CodeBuilder,
) -> Result<()> {
    out.push(Instr::Push);
    lenv_into(depth, out);
    out.push(Instr::Push);
    out.push(Instr::NewArena);
    out.push(Instr::ConsPair); // (lenv, {})
    body(out)?;
    out.push(Instr::Snd); // {body}
    out.push(Instr::ConsPair); // (T, {body})
    Ok(())
}

fn gen_into(e: &CExprS, ctx: &Ctx, out: &mut CodeBuilder) -> Result<()> {
    let span = e.span;
    match &e.node {
        CExpr::Lit(l) => emit(Instr::Quote(lit_value(l)), out),
        CExpr::Var(n) => {
            let (i, kind) = ctx
                .find(n)
                .ok_or_else(|| err(format!("unbound variable {n}"), span))?;
            if kind != Kind::Val {
                return Err(err(format!("`{n}` is a code variable"), span));
            }
            if ctx.is_early(i) {
                // The modal restriction: no early value variables under code.
                return Err(err(
                    format!(
                        "value variable `{n}` from an earlier stage occurs under `code` \
                         (only code variables may; use `lift` to stage the value)"
                    ),
                    span,
                ));
            }
            emit_all(ctx.late_path(i), out);
        }
        CExpr::CodeVar(u) => {
            let (i, kind) = ctx
                .find(u)
                .ok_or_else(|| err(format!("unbound code variable {u}"), span))?;
            if kind != Kind::Cogen {
                return Err(err(format!("`{u}` is not a code variable"), span));
            }
            if ctx.is_early(i) {
                // Splice: apply u's generating extension to the current
                // arena — "effectively substituting its code into the
                // current code" (§5).
                let path = ctx.early_path(i);
                out.push(Instr::Push);
                lenv_into(0, out);
                out.push(Instr::Swap); // P :: lenv
                out.push(Instr::Push);
                lenv_into(0, out);
                out.extend(path); // g :: P :: lenv
                out.push(Instr::Swap);
                out.push(Instr::Snd); // A :: g :: lenv
                out.push(Instr::ConsPair); // (g, A)
                out.push(Instr::App); // (v0', A)
                out.push(Instr::Snd); // A
                out.push(Instr::ConsPair); // (lenv, A)
            } else {
                // Bound under this `code`: rebuild the invocation against
                // its (late) binder.
                let mut inv = vec![Instr::Push];
                inv.extend(ctx.late_path(i));
                inv.extend([
                    Instr::Swap,
                    Instr::NewArena,
                    Instr::ConsPair,
                    Instr::App,
                    Instr::Call,
                ]);
                emit_all(inv, out);
            }
        }
        CExpr::Lam(p, body) => {
            // Generate the body into a fresh arena, then merge it into the
            // main arena as a Cur.
            let inner = ctx.bind_late(p.clone(), Kind::Val);
            out.push(Instr::Push); // P :: P
            lenv_into(0, out); // lenv :: P
            out.push(Instr::Push);
            out.push(Instr::NewArena);
            out.push(Instr::ConsPair); // (lenv, {}) :: P
            gen_into(body, &inner, out)?; // (lenv, {B}) :: P
            out.push(Instr::Snd); // {B} :: P
            out.push(Instr::Swap); // P :: {B}
            out.push(Instr::ConsPair); // ({B}, P)
            out.push(Instr::Merge); // (lenv, A@Cur(B))
        }
        CExpr::App(f, a) => {
            gen_pair_into(
                |out| gen_into(f, ctx, out),
                |out| gen_into(a, ctx, out),
                out,
            )?;
            emit(Instr::App, out);
        }
        CExpr::Prim(p, args) => {
            match args.len() {
                1 => gen_into(&args[0], ctx, out)?,
                2 => gen_pair_into(
                    |out| gen_into(&args[0], ctx, out),
                    |out| gen_into(&args[1], ctx, out),
                    out,
                )?,
                3 => gen_pair_into(
                    |out| gen_into(&args[0], ctx, out),
                    |out| {
                        gen_pair_into(
                            |out| gen_into(&args[1], ctx, out),
                            |out| gen_into(&args[2], ctx, out),
                            out,
                        )
                    },
                    out,
                )?,
                n => return Err(err(format!("primitive of unsupported arity {n}"), span)),
            }
            emit(Instr::Prim(prim_op(*p)), out);
        }
        CExpr::If(c, t, f) => {
            emit(Instr::Push, out);
            gen_into(c, ctx, out)?;
            emit(Instr::ConsPair, out);
            subgen_into(|out| gen_into(t, ctx, out), 0, out)?;
            subgen_into(|out| gen_into(f, ctx, out), 1, out)?;
            out.push(Instr::MergeBranch);
        }
        CExpr::Let(n, rhs, body) => {
            emit(Instr::Push, out);
            gen_into(rhs, ctx, out)?;
            emit(env_cons(ctx.mode()), out);
            let inner = ctx.bind_late(n.clone(), Kind::Val);
            gen_into(body, &inner, out)?;
        }
        CExpr::LetRec(defs, body) => {
            let mut group_ctx = ctx.clone();
            for def in defs.iter() {
                group_ctx = group_ctx.bind_late(def.name.clone(), Kind::Val);
            }
            for (j, def) in defs.iter().enumerate() {
                let def_ctx = group_ctx.bind_late(def.param.clone(), Kind::Val);
                subgen_into(|out| gen_into(&def.body, &def_ctx, out), j, out)?;
            }
            out.push(Instr::MergeRec(defs.len()));
            gen_into(body, &group_ctx, out)?;
        }
        CExpr::Tuple(parts) => gen_tuple_into(parts, ctx, out)?,
        CExpr::Proj {
            index,
            arity,
            tuple,
        } => {
            gen_into(tuple, ctx, out)?;
            for _ in 0..*index {
                emit(Instr::Snd, out);
            }
            if index < &(arity - 1) {
                emit(Instr::Fst, out);
            }
        }
        CExpr::Con(c, payload) => match payload {
            None => emit(Instr::Quote(Value::Con(c.0, None)), out),
            Some(p) => {
                gen_into(p, ctx, out)?;
                emit(Instr::Pack(c.0), out);
            }
        },
        CExpr::Case {
            scrut,
            arms,
            default,
        } => {
            emit(Instr::Push, out);
            gen_into(scrut, ctx, out)?;
            emit(Instr::ConsPair, out);
            let mut spec = MergeSwitchSpec {
                arms: Vec::with_capacity(arms.len()),
                default: default.is_some(),
            };
            for (j, arm) in arms.iter().enumerate() {
                match &arm.binder {
                    Some(b) => {
                        spec.arms.push((arm.con.0, true));
                        let inner = ctx.bind_late(b.clone(), Kind::Val);
                        subgen_into(|out| gen_into(&arm.rhs, &inner, out), j, out)?;
                    }
                    None => {
                        spec.arms.push((arm.con.0, false));
                        subgen_into(|out| gen_into(&arm.rhs, ctx, out), j, out)?;
                    }
                }
            }
            if let Some(d) = default {
                subgen_into(|out| gen_into(d, ctx, out), arms.len(), out)?;
            }
            out.push(Instr::MergeSwitch(Rc::new(spec)));
        }
        CExpr::Code(body) => {
            // Closure insertion (multi-stage, §5 last paragraph): build, at
            // generation time, the closure c = [lenv : Cur(G_inner)];
            // residualize it via `lift`; and emit code applying it to the
            // stage environment. No nested emits are ever constructed.
            let inner_ctx = ctx.enter_code();
            let mut inner = out.child();
            gen_into(body, &inner_ctx, &mut inner)?;
            let g_inner = inner.finish_block();
            let c_body = out.seg().add_block(vec![Instr::Cur(g_inner)]);
            emit(Instr::Push, out); // runtime: duplicate the stage env
            out.push(Instr::Push); // P :: P
            out.push(Instr::Push); // P :: P :: P
            lenv_into(0, out); // lenv :: P :: P
            out.push(Instr::Cur(c_body)); // c :: P :: P
            out.push(Instr::Swap); // P :: c :: P
            out.push(Instr::Snd); // A :: c :: P
            out.push(Instr::ConsPair); // (c, A) :: P
            out.push(Instr::LiftV); // arena gains Quote(c)
            out.push(Instr::ConsPair); // (P, (c, A))
            out.push(Instr::Fst); // P
            emit(Instr::Swap, out); // runtime: env :: c  →  swap
            emit(Instr::ConsPair, out); // runtime: (c, env)
            emit(Instr::App, out); // runtime: [(lenv, env) : G_inner]
        }
        CExpr::Lift(inner) => {
            gen_into(inner, ctx, out)?;
            let lift = out.seg().add_block(vec![Instr::LiftV]);
            emit(Instr::Cur(lift), out);
        }
        CExpr::LetCogen(u, m, n) => {
            emit(Instr::Push, out);
            gen_into(m, ctx, out)?;
            emit(env_cons(ctx.mode()), out);
            let inner = ctx.bind_late(u.clone(), Kind::Cogen);
            gen_into(n, &inner, out)?;
        }
        CExpr::Fail(msg) => emit(Instr::Fail(msg.clone()), out),
        CExpr::Ascribe(inner, _) => gen_into(inner, ctx, out)?,
    }
    Ok(())
}

fn gen_tuple_into(parts: &[CExprS], ctx: &Ctx, out: &mut CodeBuilder) -> Result<()> {
    match parts {
        [] => unreachable!("tuples have arity >= 2"),
        [last] => gen_into(last, ctx, out),
        [head, rest @ ..] => gen_pair_into(
            |out| gen_into(head, ctx, out),
            |out| gen_tuple_into(rest, ctx, out),
            out,
        ),
    }
}

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

/// What a compiled declaration's code does with the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclEffect {
    /// The code maps the environment to an *extended* environment
    /// (`val`, `fun`, `cogen`).
    ExtendsEnv,
    /// The code maps the environment to a result value, leaving the
    /// environment unchanged (bare expressions).
    ProducesValue,
}

/// Compiles one core declaration into `seg`. Returns the (raw) code, the
/// extended context, and whether the code extends the environment or
/// produces a value.
///
/// # Errors
///
/// Propagates expression-compilation errors.
pub fn compile_decl(
    d: &CoreDecl,
    ctx: &Ctx,
    seg: &CodeSeg,
) -> Result<(Vec<Instr>, Ctx, DeclEffect)> {
    match d {
        CoreDecl::Val(n, e) => {
            let mut b = CodeBuilder::new(seg);
            b.push(Instr::Push);
            expr_into(e, ctx, &mut b)?;
            b.push(env_cons(ctx.mode()));
            Ok((
                b.into_instrs(),
                ctx.bind_early(n.clone(), Kind::Val),
                DeclEffect::ExtendsEnv,
            ))
        }
        CoreDecl::Cogen(u, e) => {
            let mut b = CodeBuilder::new(seg);
            b.push(Instr::Push);
            expr_into(e, ctx, &mut b)?;
            b.push(env_cons(ctx.mode()));
            Ok((
                b.into_instrs(),
                ctx.bind_early(u.clone(), Kind::Cogen),
                DeclEffect::ExtendsEnv,
            ))
        }
        CoreDecl::Fun(defs) => {
            let mut group_ctx = ctx.clone();
            for def in defs.iter() {
                group_ctx = group_ctx.bind_early(def.name.clone(), Kind::Val);
            }
            let b = CodeBuilder::new(seg);
            let mut bodies = Vec::with_capacity(defs.len());
            for def in defs.iter() {
                let def_ctx = group_ctx.bind_early(def.param.clone(), Kind::Val);
                bodies.push(expr_block(&def.body, &def_ctx, &b)?);
            }
            Ok((
                vec![Instr::RecClos(Rc::new(bodies))],
                group_ctx,
                DeclEffect::ExtendsEnv,
            ))
        }
        CoreDecl::Expr(e) => Ok((
            compile_expr(e, ctx, seg)?,
            ctx.clone(),
            DeclEffect::ProducesValue,
        )),
    }
}

/// Compiles a whole program (declaration sequence) into one entry block
/// of a fresh segment, mapping an initial environment (conventionally
/// `()`) to the value of the last value-producing declaration, in the
/// default pair-spine access mode.
///
/// # Errors
///
/// Propagates expression-compilation errors.
pub fn compile_program(decls: &[CoreDecl]) -> Result<CodeRef> {
    compile_program_with(decls, EnvMode::default())
}

/// Like [`compile_program`], with an explicit environment-access mode.
///
/// # Errors
///
/// Propagates expression-compilation errors.
pub fn compile_program_with(decls: &[CoreDecl], mode: EnvMode) -> Result<CodeRef> {
    let seg = CodeSeg::new();
    let mut ctx = Ctx::root_with(mode);
    let mut out = CodeBuilder::new(&seg);
    let mut last_produces_value = false;
    for d in decls {
        let (code, new_ctx, effect) = compile_decl(d, &ctx, &seg)?;
        match effect {
            DeclEffect::ExtendsEnv => {
                out.extend(code);
                ctx = new_ctx;
                last_produces_value = false;
            }
            DeclEffect::ProducesValue => {
                if std::ptr::eq(d, decls.last().expect("nonempty")) {
                    out.extend(code);
                    last_produces_value = true;
                } else {
                    // Evaluate for effect, then restore the environment:
                    // ⟨id, [e]⟩; fst.
                    out.push(Instr::Push);
                    out.extend(code);
                    out.push(Instr::ConsPair);
                    out.push(Instr::Fst);
                }
            }
        }
    }
    if !last_produces_value && !decls.is_empty() {
        // Surface the most recent binding as the program value.
        out.push(Instr::Snd);
    }
    Ok(out.finish_entry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccam::instr::validate;
    use ccam::machine::Machine;
    use mlbox_ir::elab::Elab;
    use mlbox_syntax::parser::{parse_expr, parse_program};

    fn run(src: &str) -> ccam::value::Value {
        let e = parse_expr(src).unwrap();
        let core = Elab::new().elab_expr(&e).unwrap();
        let seg = CodeSeg::new();
        let code = compile_expr(&core, &Ctx::root(), &seg).unwrap();
        validate(&seg, &code).unwrap();
        Machine::new().run(seg.entry(code), Value::Unit).unwrap()
    }

    fn run_program(src: &str) -> ccam::value::Value {
        let p = parse_program(src).unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let code = compile_program(&decls).unwrap();
        validate(&code.seg, &code.to_vec()).unwrap();
        Machine::new().run(code, Value::Unit).unwrap()
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(run("1 + 2 * 3").to_string(), "7");
        assert_eq!(run("(10 div 3) mod 2").to_string(), "1");
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(run("(fn x => x + 1) 41").to_string(), "42");
        assert_eq!(run("(fn x => fn y => x - y) 10 4").to_string(), "6");
    }

    #[test]
    fn let_bindings() {
        assert_eq!(
            run("let val x = 5 val y = x * x in y + x end").to_string(),
            "30"
        );
    }

    #[test]
    fn conditionals() {
        assert_eq!(run("if 1 < 2 then 10 else 20").to_string(), "10");
        assert_eq!(
            run("if false then 1 else if true then 2 else 3").to_string(),
            "2"
        );
    }

    #[test]
    fn tuples_and_projections() {
        assert_eq!(run("fn u => (1, 2, 3)").to_string(), "<fn>");
        assert_eq!(
            run("let val t = (1, 2, 3) in t end").to_string(),
            "(1, (2, 3))"
        );
    }

    #[test]
    fn recursion_via_recclos() {
        assert_eq!(
            run_program("fun fact n = if n = 0 then 1 else n * fact (n - 1);\nfact 6").to_string(),
            "720"
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            run_program(
                "fun even n = if n = 0 then true else odd (n - 1)\n\
                 and odd n = if n = 0 then false else even (n - 1);\n\
                 odd 9"
            )
            .to_string(),
            "true"
        );
    }

    #[test]
    fn datatypes_and_case() {
        assert_eq!(
            run_program(
                "datatype t = A | B of int\n\
                 fun f x = case x of A => 100 | B n => n;\n\
                 f (B 7) + f A"
            )
            .to_string(),
            "107"
        );
    }

    #[test]
    fn lists_and_patterns() {
        assert_eq!(
            run_program("fun sum xs = case xs of nil => 0 | a :: p => a + sum p;\nsum [1,2,3,4,5]")
                .to_string(),
            "15"
        );
    }

    #[test]
    fn simple_code_and_invoke() {
        assert_eq!(
            run_program(
                "fun eval c = let cogen u = c in u end;\n\
                 eval (code (fn x => x + 1)) 41"
            )
            .to_string(),
            "42"
        );
    }

    #[test]
    fn lift_residualizes() {
        assert_eq!(
            run_program("fun eval c = let cogen u = c in u end;\neval (lift (21 * 2))").to_string(),
            "42"
        );
    }

    #[test]
    fn splice_composes_generators() {
        let src = "\
fun eval c = let cogen u = c in u end
val compose = fn f => fn g =>
  let cogen f' = f
      cogen g' = g
  in code (fn x => f' (g' x)) end;
eval (compose (code (fn x => x * 2)) (code (fn x => x + 1))) 5";
        assert_eq!(run_program(src).to_string(), "12");
    }

    #[test]
    fn comp_poly_generates_specialized_code() {
        let src = "\
fun eval c = let cogen u = c in u end
fun compPoly p =
  case p of
    nil => code (fn x => 0)
  | a :: p' =>
      let cogen f = compPoly p'
          cogen a' = lift a
      in code (fn x => a' + (x * f x)) end
val f = eval (compPoly [2, 4, 0, 2333]);
f 47";
        let expected = 2 + 4 * 47 + 2333i64 * 47 * 47 * 47;
        assert_eq!(run_program(src).to_string(), expected.to_string());
    }

    #[test]
    fn specialized_code_is_cheaper_per_call() {
        // Compare steps: interpretive evalPoly vs the compPoly-specialized
        // function, on the same polynomial — the paper's central claim.
        let poly = "[2, 4, 0, 2333]";
        let interp_src = format!(
            "fun evalPoly (x, p) = case p of nil => 0 | a :: p' => a + (x * evalPoly (x, p'));\n\
             evalPoly (47, {poly})"
        );
        let staged_src = format!(
            "fun eval c = let cogen u = c in u end\n\
             fun compPoly p =\n\
               case p of nil => code (fn x => 0)\n\
               | a :: p' => let cogen f = compPoly p' cogen a' = lift a\n\
                            in code (fn x => a' + (x * f x)) end\n\
             val f = eval (compPoly {poly});\n\
             f 47"
        );
        let run_steps = |src: &str| {
            let p = parse_program(src).unwrap();
            let decls = Elab::new().elab_program(&p).unwrap();
            let code = compile_program(&decls).unwrap();
            let mut m = Machine::new();
            let v = m.run(code, Value::Unit).unwrap();
            (v.to_string(), m.stats().steps)
        };
        let (v1, _steps_interp) = run_steps(&interp_src);
        let (v2, _steps_staged) = run_steps(&staged_src);
        assert_eq!(v1, v2);
    }

    #[test]
    fn multi_stage_nested_code() {
        // A generator whose generated code is itself a generator:
        // stage 0 builds stage 1, which builds stage 2.
        let src = "\
fun eval c = let cogen u = c in u end
val twoStage =
  code (fn a => code (fn b => b * 2))
val stage1 = eval twoStage
val g2 = stage1 7
fun eval2 c = let cogen u = c in u end
val f = eval2 g2;
f 10";
        assert_eq!(run_program(src).to_string(), "20");
    }

    #[test]
    fn multi_stage_inner_uses_outer_late_var_via_lift() {
        // The inner stage quotes a stage-1 value with lift.
        let src = "\
fun eval c = let cogen u = c in u end
val twoStage =
  code (fn a => let cogen a' = lift a in code (fn b => a' + b) end)
val g2 = eval twoStage 7
val f = eval g2;
f 10";
        assert_eq!(run_program(src).to_string(), "17");
    }

    #[test]
    fn no_nested_emits_anywhere() {
        let src = "\
fun eval c = let cogen u = c in u end
val twoStage =
  code (fn a => let cogen a' = lift a in code (fn b => a' + b) end);
eval twoStage";
        let p = parse_program(src).unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let code = compile_program(&decls).unwrap();
        validate(&code.seg, &code.to_vec()).unwrap();
    }

    #[test]
    fn early_value_var_under_code_is_rejected() {
        let src = "fn y => code (fn x => x + y)";
        let e = parse_expr(src).unwrap();
        let core = Elab::new().elab_expr(&e).unwrap();
        let errd = compile_expr(&core, &Ctx::root(), &CodeSeg::new()).unwrap_err();
        assert!(errd.message.contains("earlier stage"), "{}", errd.message);
    }

    #[test]
    fn generated_conditionals_specialize_both_branches() {
        let src = "\
fun eval c = let cogen u = c in u end
val g = code (fn x => if x < 10 then x + 1 else x - 1)
val f = eval g;
f 9 + f 11";
        assert_eq!(run_program(src).to_string(), "20");
    }

    #[test]
    fn generated_case_dispatch() {
        let src = "\
datatype t = A | B of int
fun eval c = let cogen u = c in u end
val g = code (fn x => case x of A => 0 | B n => n + 1)
val f = eval g;
f (B 4) + f A";
        assert_eq!(run_program(src).to_string(), "5");
    }

    #[test]
    fn generated_recursive_function() {
        let src = "\
fun eval c = let cogen u = c in u end
val g = code (fn start =>
  let fun go n = if n = 0 then 0 else n + go (n - 1)
  in go start end)
val f = eval g;
f 10";
        assert_eq!(run_program(src).to_string(), "55");
    }

    #[test]
    fn refs_and_arrays_compile() {
        assert_eq!(
            run("let val r = ref 5 in (r := !r * 2; !r + 1) end").to_string(),
            "11"
        );
        assert_eq!(
            run_program(
                "val a = array (3, 1)\nval u = update (a, 0, 10);\nsub (a, 0) + sub (a, 1)"
            )
            .to_string(),
            "11"
        );
    }

    #[test]
    fn strings_compile() {
        assert_eq!(run("size (\"ab\" ^ \"cde\")").to_string(), "5");
    }

    #[test]
    fn program_value_is_last_binding_when_no_expr() {
        assert_eq!(run_program("val x = 1\nval y = 41 + x").to_string(), "42");
    }

    #[test]
    fn lift_of_function_embeds_closure() {
        // The paper's general lift: residualize a closure into the
        // instruction stream as an immediate.
        let src = "\
fun eval c = let cogen u = c in u end
fun double x = x * 2
val g = let cogen d = lift double in code (fn x => d (x + 1)) end
val f = eval g;
f 20";
        assert_eq!(run_program(src).to_string(), "42");
    }

    #[test]
    fn indexed_mode_agrees_with_pair_spine() {
        let programs = [
            "let val x = 5 val y = x * x in y + x end",
            "fun fact n = if n = 0 then 1 else n * fact (n - 1);\nfact 6",
            "fun eval c = let cogen u = c in u end\n\
             fun compPoly p =\n\
               case p of nil => code (fn x => 0)\n\
               | a :: p' => let cogen f = compPoly p' cogen a' = lift a\n\
                            in code (fn x => a' + (x * f x)) end\n\
             val f = eval (compPoly [2, 4, 0, 2333]);\n\
             f 47",
            "fun eval c = let cogen u = c in u end\n\
             val twoStage =\n\
               code (fn a => let cogen a' = lift a in code (fn b => a' + b) end)\n\
             val g2 = eval twoStage 7\n\
             val f = eval g2;\n\
             f 10",
        ];
        for src in programs {
            let p = parse_program(src).unwrap();
            let decls = Elab::new().elab_program(&p).unwrap();
            let run_mode = |mode| {
                let code = compile_program_with(&decls, mode).unwrap();
                validate(&code.seg, &code.to_vec()).unwrap();
                let mut m = Machine::new();
                let v = m.run(code, Value::Unit).unwrap();
                (v.to_string(), m.stats().steps)
            };
            let (v_spine, s_spine) = run_mode(EnvMode::PairSpine);
            let (v_idx, s_idx) = run_mode(EnvMode::Indexed);
            assert_eq!(v_spine, v_idx, "mode disagreement on {src:?}");
            assert!(
                s_idx <= s_spine,
                "indexed mode took more steps ({s_idx} > {s_spine}) on {src:?}"
            );
        }
    }

    #[test]
    fn flat_mode_agrees_with_both_spine_modes() {
        let programs = [
            "let val x = 5 val y = x * x in y + x end",
            "fun fact n = if n = 0 then 1 else n * fact (n - 1);\nfact 6",
            "fun eval c = let cogen u = c in u end\n\
             fun compPoly p =\n\
               case p of nil => code (fn x => 0)\n\
               | a :: p' => let cogen f = compPoly p' cogen a' = lift a\n\
                            in code (fn x => a' + (x * f x)) end\n\
             val f = eval (compPoly [2, 4, 0, 2333]);\n\
             f 47",
            "fun eval c = let cogen u = c in u end\n\
             val twoStage =\n\
               code (fn a => let cogen a' = lift a in code (fn b => a' + b) end)\n\
             val g2 = eval twoStage 7\n\
             val f = eval g2;\n\
             f 10",
        ];
        for src in programs {
            let p = parse_program(src).unwrap();
            let decls = Elab::new().elab_program(&p).unwrap();
            let run_mode = |mode| {
                let code = compile_program_with(&decls, mode).unwrap();
                validate(&code.seg, &code.to_vec()).unwrap();
                let mut m = Machine::new();
                let v = m.run(code, Value::Unit).unwrap();
                (v.to_string(), m.stats().steps)
            };
            let (v_spine, _) = run_mode(EnvMode::PairSpine);
            let (v_idx, s_idx) = run_mode(EnvMode::Indexed);
            let (v_flat, s_flat) = run_mode(EnvMode::Flat);
            assert_eq!(v_spine, v_flat, "flat disagreement on {src:?}");
            assert_eq!(v_idx, v_flat);
            // env_cons costs one step like cons, and flat access paths
            // render exactly as indexed ones, so the step counts match.
            assert_eq!(s_flat, s_idx, "flat steps diverge from indexed on {src:?}");
        }
    }

    #[test]
    fn flat_mode_emits_env_cons_at_extension_sites_only() {
        let src = "let val x = 5 in if x < 9 then x else 0 end";
        let e = parse_expr(src).unwrap();
        let core = Elab::new().elab_expr(&e).unwrap();
        let seg = CodeSeg::new();
        let code = compile_expr(&core, &Ctx::root_with(EnvMode::Flat), &seg).unwrap();
        validate(&seg, &code).unwrap();
        let entry = seg.entry(code);
        let counts = ccam::disasm::census(&entry.seg, entry.block);
        assert_eq!(counts["env_cons"], 1, "the let extends the env");
        // The branch scratch pair and the `<` operand pair stay pairs.
        assert_eq!(counts["cons"], 2);
        let v = Machine::new().run(entry, Value::Unit).unwrap();
        assert_eq!(v.to_string(), "5");
    }

    #[test]
    fn indexed_mode_emits_acc_into_arenas() {
        // The generating translation must route late accesses through
        // Layout::path: in indexed mode the arena receives `acc`, not
        // `fst`/`snd` chains.
        let src = "\
fun eval c = let cogen u = c in u end
val g = code (fn x => fn y => x + y)
val f = eval g;
f 1 2";
        let p = parse_program(src).unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let code = compile_program_with(&decls, crate::ctx::EnvMode::Indexed).unwrap();
        let counts = ccam::disasm::census(&code.seg, code.block);
        assert!(counts.contains_key("acc"), "no acc in compiled output");
        let emits_acc = {
            fn scan(seg: &CodeSeg, code: &[Instr]) -> bool {
                code.iter().any(|i| match i {
                    Instr::Emit(inner) => matches!(**inner, Instr::Acc(_)),
                    Instr::Cur(c) => scan(seg, &seg.block_to_vec(*c)),
                    Instr::Branch(a, b) => {
                        scan(seg, &seg.block_to_vec(*a)) || scan(seg, &seg.block_to_vec(*b))
                    }
                    _ => false,
                })
            }
            scan(&code.seg, &code.to_vec())
        };
        assert!(emits_acc, "generating translation emitted no Acc");
    }

    #[test]
    fn codegen_under_case_scrutinee_side_effects_once() {
        // Generation happens when the code variable is *used*.
        let src = "\
fun eval c = let cogen u = c in u end
val g = code (fn x => x + 1);
eval g 1 + eval g 2";
        assert_eq!(run_program(src).to_string(), "5");
    }

    #[test]
    fn program_compiles_into_one_segment() {
        // Everything — decl code, closure bodies, generator bodies —
        // must land in the single program segment.
        let src = "\
fun eval c = let cogen u = c in u end
val g = code (fn x => x + 1)
val f = eval g;
f 1";
        let p = parse_program(src).unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let code = compile_program(&decls).unwrap();
        assert!(code.seg.num_blocks() > 1, "nested blocks registered");
        // Executing may append frozen blocks to the same segment's tail.
        let before = code.seg.num_blocks();
        let mut m = Machine::new();
        let seg = code.seg.clone();
        let v = m.run(code, Value::Unit).unwrap();
        assert_eq!(v.to_string(), "2");
        assert!(
            seg.num_blocks() > before,
            "generated code froze into the program segment"
        );
    }
}
