//! The big-step evaluator.

use crate::value::{CodeEnv, Env, GenRep, RClosure, RRecGroup, RVal};
use mlbox_ir::core::{CExpr, CExprS, CoreDecl, Lit, Prim};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Why evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding (indicates an elaboration bug or a
    /// program that failed type checking).
    Unbound(String),
    /// An operation was applied to a value of the wrong shape.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// A rendering of what it found.
        found: String,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// A `Fail` expression ran (inexhaustive match).
    Fail(String),
    /// The step budget was exhausted.
    OutOfFuel {
        /// The exceeded budget.
        fuel: u64,
    },
    /// `=` on closures or generators.
    EqualityUndefined,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(n) => write!(f, "unbound variable {n}"),
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            EvalError::DivideByZero => f.write_str("integer division by zero"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            EvalError::Fail(m) => write!(f, "failure: {m}"),
            EvalError::OutOfFuel { fuel } => {
                write!(f, "evaluation budget of {fuel} steps exhausted")
            }
            EvalError::EqualityUndefined => {
                f.write_str("equality is not defined on functions or code")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The interpreter: holds the print buffer, a step counter, and an
/// optional fuel limit.
#[derive(Debug, Default)]
pub struct Interp {
    steps: u64,
    fuel: Option<u64>,
    output: String,
}

impl Interp {
    /// A fresh interpreter with no step budget.
    pub fn new() -> Self {
        Interp::default()
    }

    /// An interpreter that aborts after `fuel` evaluation steps.
    pub fn with_fuel(fuel: u64) -> Self {
        Interp {
            fuel: Some(fuel),
            ..Interp::default()
        }
    }

    /// Evaluation steps taken so far (one per expression node evaluated).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Everything printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Clears and returns the output buffer.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Evaluates a closed expression.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on dynamic failure.
    pub fn eval(&mut self, e: &CExprS) -> Result<RVal, EvalError> {
        self.eval_in(&Env::empty(), &CodeEnv::empty(), e)
    }

    /// Evaluates a declaration sequence, returning the value of the last
    /// value-producing declaration (or unit).
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on dynamic failure.
    pub fn eval_decls(&mut self, decls: &[CoreDecl]) -> Result<RVal, EvalError> {
        let mut env = Env::empty();
        let mut cenv = CodeEnv::empty();
        let mut last = RVal::Unit;
        for d in decls {
            last = self.eval_decl(&mut env, &mut cenv, d)?;
        }
        Ok(last)
    }

    /// Evaluates one declaration against mutable environments (used by the
    /// incremental session driver).
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on dynamic failure.
    pub fn eval_decl(
        &mut self,
        env: &mut Env,
        cenv: &mut CodeEnv,
        d: &CoreDecl,
    ) -> Result<RVal, EvalError> {
        match d {
            CoreDecl::Val(n, e) => {
                let v = self.eval_in(env, cenv, e)?;
                *env = env.bind(n.clone(), v.clone());
                Ok(v)
            }
            CoreDecl::Fun(defs) => {
                let group = Rc::new(RRecGroup {
                    env: env.clone(),
                    cenv: cenv.clone(),
                    defs: defs.clone(),
                });
                let mut result = RVal::Unit;
                for (index, def) in defs.iter().enumerate() {
                    let v = RVal::RecClosure {
                        group: group.clone(),
                        index,
                    };
                    *env = env.bind(def.name.clone(), v.clone());
                    result = v;
                }
                Ok(result)
            }
            CoreDecl::Cogen(u, e) => {
                let v = self.eval_in(env, cenv, e)?;
                let RVal::Gen(rep) = v else {
                    return Err(EvalError::TypeMismatch {
                        expected: "a code generator",
                        found: v.to_string(),
                    });
                };
                *cenv = cenv.bind(u.clone(), rep);
                Ok(RVal::Unit)
            }
            CoreDecl::Expr(e) => self.eval_in(env, cenv, e),
        }
    }

    fn tick(&mut self) -> Result<(), EvalError> {
        self.steps += 1;
        if let Some(fuel) = self.fuel {
            if self.steps > fuel {
                return Err(EvalError::OutOfFuel { fuel });
            }
        }
        Ok(())
    }

    /// Evaluates under explicit environments.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on dynamic failure.
    pub fn eval_in(&mut self, env: &Env, cenv: &CodeEnv, e: &CExprS) -> Result<RVal, EvalError> {
        self.tick()?;
        match &e.node {
            CExpr::Lit(l) => Ok(match l {
                Lit::Int(n) => RVal::Int(*n),
                Lit::Bool(b) => RVal::Bool(*b),
                Lit::Str(s) => RVal::Str(s.clone()),
                Lit::Unit => RVal::Unit,
            }),
            CExpr::Var(n) => env
                .get(n)
                .cloned()
                .ok_or_else(|| EvalError::Unbound(n.to_string())),
            CExpr::CodeVar(u) => {
                // Using a code variable: evaluate its suspension under an
                // empty value environment (code is closed except for Δ).
                let rep = cenv
                    .get(u)
                    .cloned()
                    .ok_or_else(|| EvalError::Unbound(u.to_string()))?;
                match rep {
                    GenRep::Quote(v) => Ok((*v).clone()),
                    GenRep::Susp { body, cenv } => self.eval_in(&Env::empty(), &cenv, &body),
                }
            }
            CExpr::Lam(p, body) => Ok(RVal::Closure(Rc::new(RClosure {
                env: env.clone(),
                cenv: cenv.clone(),
                param: p.clone(),
                body: Rc::new((**body).clone()),
            }))),
            CExpr::App(f, a) => {
                let f = self.eval_in(env, cenv, f)?;
                let a = self.eval_in(env, cenv, a)?;
                self.apply(f, a)
            }
            CExpr::Prim(p, args) => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval_in(env, cenv, a)?);
                }
                self.prim(*p, vs)
            }
            CExpr::If(c, t, f) => {
                let c = self.eval_in(env, cenv, c)?;
                match c {
                    RVal::Bool(true) => self.eval_in(env, cenv, t),
                    RVal::Bool(false) => self.eval_in(env, cenv, f),
                    other => Err(EvalError::TypeMismatch {
                        expected: "a boolean condition",
                        found: other.to_string(),
                    }),
                }
            }
            CExpr::Let(n, rhs, body) => {
                let v = self.eval_in(env, cenv, rhs)?;
                self.eval_in(&env.bind(n.clone(), v), cenv, body)
            }
            CExpr::LetRec(defs, body) => {
                let group = Rc::new(RRecGroup {
                    env: env.clone(),
                    cenv: cenv.clone(),
                    defs: defs.clone(),
                });
                let mut env = env.clone();
                for (index, def) in defs.iter().enumerate() {
                    env = env.bind(
                        def.name.clone(),
                        RVal::RecClosure {
                            group: group.clone(),
                            index,
                        },
                    );
                }
                self.eval_in(&env, cenv, body)
            }
            CExpr::Tuple(parts) => {
                let mut vs = Vec::with_capacity(parts.len());
                for p in parts {
                    vs.push(self.eval_in(env, cenv, p)?);
                }
                Ok(RVal::tuple(vs))
            }
            CExpr::Proj {
                index,
                arity,
                tuple,
            } => {
                let mut v = self.eval_in(env, cenv, tuple)?;
                // Right-nested pairs: snd × index, then fst unless last.
                for _ in 0..*index {
                    v = match v {
                        RVal::Pair(p) => p.1.clone(),
                        other => {
                            return Err(EvalError::TypeMismatch {
                                expected: "a tuple",
                                found: other.to_string(),
                            })
                        }
                    };
                }
                if *index < arity - 1 {
                    v = match v {
                        RVal::Pair(p) => p.0.clone(),
                        other => {
                            return Err(EvalError::TypeMismatch {
                                expected: "a tuple",
                                found: other.to_string(),
                            })
                        }
                    };
                }
                Ok(v)
            }
            CExpr::Con(c, payload) => {
                let payload = match payload {
                    None => None,
                    Some(p) => Some(Rc::new(self.eval_in(env, cenv, p)?)),
                };
                Ok(RVal::Con(*c, payload))
            }
            CExpr::Case {
                scrut,
                arms,
                default,
            } => {
                let v = self.eval_in(env, cenv, scrut)?;
                let RVal::Con(tag, payload) = &v else {
                    return Err(EvalError::TypeMismatch {
                        expected: "a datatype value",
                        found: v.to_string(),
                    });
                };
                for arm in arms {
                    if arm.con == *tag {
                        return match (&arm.binder, payload) {
                            (Some(b), Some(p)) => {
                                self.eval_in(&env.bind(b.clone(), (**p).clone()), cenv, &arm.rhs)
                            }
                            (Some(b), None) => {
                                self.eval_in(&env.bind(b.clone(), RVal::Unit), cenv, &arm.rhs)
                            }
                            (None, _) => self.eval_in(env, cenv, &arm.rhs),
                        };
                    }
                }
                match default {
                    Some(d) => self.eval_in(env, cenv, d),
                    None => Err(EvalError::Fail(format!(
                        "no case arm for constructor tag {}",
                        tag.0
                    ))),
                }
            }
            CExpr::Code(body) => Ok(RVal::Gen(GenRep::Susp {
                body: Rc::new((**body).clone()),
                cenv: cenv.clone(),
            })),
            CExpr::Lift(inner) => {
                let v = self.eval_in(env, cenv, inner)?;
                Ok(RVal::Gen(GenRep::Quote(Rc::new(v))))
            }
            CExpr::LetCogen(u, m, n) => {
                let v = self.eval_in(env, cenv, m)?;
                let RVal::Gen(rep) = v else {
                    return Err(EvalError::TypeMismatch {
                        expected: "a code generator",
                        found: v.to_string(),
                    });
                };
                self.eval_in(env, &cenv.bind(u.clone(), rep), n)
            }
            CExpr::Fail(msg) => Err(EvalError::Fail(msg.to_string())),
            CExpr::Ascribe(inner, _) => self.eval_in(env, cenv, inner),
        }
    }

    /// Applies a function value.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if `f` is not a function or the body fails.
    pub fn apply(&mut self, f: RVal, a: RVal) -> Result<RVal, EvalError> {
        match f {
            RVal::Closure(c) => {
                let env = c.env.bind(c.param.clone(), a);
                self.eval_in(&env, &c.cenv, &c.body)
            }
            RVal::RecClosure { group, index } => {
                let mut env = group.env.clone();
                for (i, def) in group.defs.iter().enumerate() {
                    env = env.bind(
                        def.name.clone(),
                        RVal::RecClosure {
                            group: group.clone(),
                            index: i,
                        },
                    );
                }
                let def = &group.defs[index];
                let env = env.bind(def.param.clone(), a);
                let cenv = group.cenv.clone();
                self.eval_in(&env, &cenv, &def.body)
            }
            other => Err(EvalError::TypeMismatch {
                expected: "a function",
                found: other.to_string(),
            }),
        }
    }

    // SML floor semantics for `div`/`mod` (`~7 div 2 = ~4`,
    // `~7 mod 2 = 1`). Deliberately duplicated from the machine: this
    // interpreter is the differential-testing oracle and must not depend
    // on the crate it checks.
    fn prim(&mut self, p: Prim, mut args: Vec<RVal>) -> Result<RVal, EvalError> {
        fn floor_div(x: i64, y: i64) -> i64 {
            let q = x.wrapping_div(y);
            if x.wrapping_rem(y) != 0 && (x < 0) != (y < 0) {
                q.wrapping_sub(1)
            } else {
                q
            }
        }
        fn floor_mod(x: i64, y: i64) -> i64 {
            let r = x.wrapping_rem(y);
            if r != 0 && (r < 0) != (y < 0) {
                r.wrapping_add(y)
            } else {
                r
            }
        }
        fn int(v: &RVal) -> Result<i64, EvalError> {
            match v {
                RVal::Int(n) => Ok(*n),
                other => Err(EvalError::TypeMismatch {
                    expected: "an integer",
                    found: other.to_string(),
                }),
            }
        }
        fn string(v: &RVal) -> Result<Rc<str>, EvalError> {
            match v {
                RVal::Str(s) => Ok(s.clone()),
                other => Err(EvalError::TypeMismatch {
                    expected: "a string",
                    found: other.to_string(),
                }),
            }
        }
        let out = match p {
            Prim::Add => RVal::Int(int(&args[0])?.wrapping_add(int(&args[1])?)),
            Prim::Sub => RVal::Int(int(&args[0])?.wrapping_sub(int(&args[1])?)),
            Prim::Mul => RVal::Int(int(&args[0])?.wrapping_mul(int(&args[1])?)),
            Prim::Div => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivideByZero);
                }
                RVal::Int(floor_div(int(&args[0])?, d))
            }
            Prim::Mod => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivideByZero);
                }
                RVal::Int(floor_mod(int(&args[0])?, d))
            }
            Prim::Neg => RVal::Int(int(&args[0])?.wrapping_neg()),
            Prim::Eq => RVal::Bool(
                args[0]
                    .structural_eq(&args[1])
                    .ok_or(EvalError::EqualityUndefined)?,
            ),
            Prim::Ne => RVal::Bool(
                !args[0]
                    .structural_eq(&args[1])
                    .ok_or(EvalError::EqualityUndefined)?,
            ),
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => {
                let b = match (&args[0], &args[1]) {
                    (RVal::Int(a), RVal::Int(b)) => match p {
                        Prim::Lt => a < b,
                        Prim::Le => a <= b,
                        Prim::Gt => a > b,
                        _ => a >= b,
                    },
                    (RVal::Str(a), RVal::Str(b)) => match p {
                        Prim::Lt => a < b,
                        Prim::Le => a <= b,
                        Prim::Gt => a > b,
                        _ => a >= b,
                    },
                    (a, _) => {
                        return Err(EvalError::TypeMismatch {
                            expected: "comparable values",
                            found: a.to_string(),
                        })
                    }
                };
                RVal::Bool(b)
            }
            Prim::BitAnd => RVal::Int(int(&args[0])? & int(&args[1])?),
            Prim::Concat => {
                let mut s = string(&args[0])?.to_string();
                s.push_str(&string(&args[1])?);
                RVal::Str(Rc::from(s))
            }
            Prim::Not => match &args[0] {
                RVal::Bool(b) => RVal::Bool(!b),
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "a boolean",
                        found: other.to_string(),
                    })
                }
            },
            Prim::StrSize => RVal::Int(string(&args[0])?.len() as i64),
            Prim::IntToString => RVal::Str(Rc::from(int(&args[0])?.to_string())),
            Prim::Print => {
                self.output.push_str(&string(&args[0])?);
                RVal::Unit
            }
            Prim::Ref => RVal::Ref(Rc::new(RefCell::new(args.remove(0)))),
            Prim::Deref => match &args[0] {
                RVal::Ref(r) => r.borrow().clone(),
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "a reference",
                        found: other.to_string(),
                    })
                }
            },
            Prim::Assign => match &args[0] {
                RVal::Ref(r) => {
                    *r.borrow_mut() = args[1].clone();
                    RVal::Unit
                }
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "a reference",
                        found: other.to_string(),
                    })
                }
            },
            Prim::MkArray => {
                let n = int(&args[0])?;
                let len = usize::try_from(n)
                    .map_err(|_| EvalError::IndexOutOfBounds { index: n, len: 0 })?;
                RVal::Array(Rc::new(RefCell::new(vec![args[1].clone(); len])))
            }
            Prim::ArrSub => match &args[0] {
                RVal::Array(a) => {
                    let borrow = a.borrow();
                    let i = int(&args[1])?;
                    let len = borrow.len();
                    let idx = usize::try_from(i)
                        .ok()
                        .filter(|&u| u < len)
                        .ok_or(EvalError::IndexOutOfBounds { index: i, len })?;
                    borrow[idx].clone()
                }
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "an array",
                        found: other.to_string(),
                    })
                }
            },
            Prim::ArrUpdate => match &args[0] {
                RVal::Array(a) => {
                    let mut borrow = a.borrow_mut();
                    let i = int(&args[1])?;
                    let len = borrow.len();
                    let idx = usize::try_from(i)
                        .ok()
                        .filter(|&u| u < len)
                        .ok_or(EvalError::IndexOutOfBounds { index: i, len })?;
                    borrow[idx] = args[2].clone();
                    RVal::Unit
                }
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "an array",
                        found: other.to_string(),
                    })
                }
            },
            Prim::ArrLen => match &args[0] {
                RVal::Array(a) => RVal::Int(a.borrow().len() as i64),
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "an array",
                        found: other.to_string(),
                    })
                }
            },
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_ir::elab::Elab;
    use mlbox_syntax::parser::{parse_expr, parse_program};

    fn run(src: &str) -> RVal {
        let e = parse_expr(src).unwrap();
        let core = Elab::new().elab_expr(&e).unwrap();
        Interp::new().eval(&core).unwrap()
    }

    fn run_program(src: &str) -> RVal {
        let p = parse_program(src).unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        Interp::new().eval_decls(&decls).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3").to_string(), "7");
        assert_eq!(run("10 div 3").to_string(), "3");
        assert_eq!(run("10 mod 3").to_string(), "1");
        assert_eq!(run("~5 + 2").to_string(), "-3");
    }

    #[test]
    fn division_floors_like_sml() {
        assert_eq!(run("~7 div 2").to_string(), "-4");
        assert_eq!(run("~7 mod 2").to_string(), "1");
        assert_eq!(run("7 div ~2").to_string(), "-4");
        assert_eq!(run("7 mod ~2").to_string(), "-1");
        assert_eq!(run("~7 div ~2").to_string(), "3");
        assert_eq!(run("~7 mod ~2").to_string(), "-1");
    }

    #[test]
    fn let_and_lambda() {
        assert_eq!(
            run("let val f = fn x => x + 1 in f 41 end").to_string(),
            "42"
        );
    }

    #[test]
    fn recursion() {
        assert_eq!(
            run_program("fun fact n = if n = 0 then 1 else n * fact (n - 1);\nfact 10").to_string(),
            "3628800"
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            run_program(
                "fun even n = if n = 0 then true else odd (n - 1)\n\
                 and odd n = if n = 0 then false else even (n - 1);\n\
                 even 10"
            )
            .to_string(),
            "true"
        );
    }

    #[test]
    fn pattern_matching_on_lists() {
        assert_eq!(
            run_program(
                "fun sum xs = case xs of nil => 0 | a :: p => a + sum p;\nsum [1, 2, 3, 4]"
            )
            .to_string(),
            "10"
        );
    }

    #[test]
    fn clausal_fun_over_pairs() {
        assert_eq!(
            run_program(
                "fun evalPoly (x, nil) = 0\n\
                 | evalPoly (x, a::p) = a + (x * evalPoly (x, p));\n\
                 evalPoly (2, [1, 2, 3])"
            )
            .to_string(),
            "17"
        );
    }

    #[test]
    fn code_and_eval_round_trip() {
        // eval (code (fn x => x + 1)) applied to 1.
        assert_eq!(
            run_program(
                "fun eval c = let cogen u = c in u end\n\
                 val f = eval (code (fn x => x + 1));\n\
                 f 1"
            )
            .to_string(),
            "2"
        );
    }

    #[test]
    fn lift_quotes_values() {
        assert_eq!(
            run_program(
                "fun eval c = let cogen u = c in u end;\n\
                 eval (lift (21 + 21))"
            )
            .to_string(),
            "42"
        );
    }

    #[test]
    fn staged_composition() {
        // The paper's compose-generators example.
        let src = "\
fun eval c = let cogen u = c in u end
val compose = fn f => fn g =>
  let cogen f' = f
      cogen g' = g
  in code (fn x => f' (g' x)) end
val h = eval (compose (code (fn x => x * 2)) (code (fn x => x + 1)));
h 5";
        assert_eq!(run_program(src).to_string(), "12");
    }

    #[test]
    fn comp_poly_staged() {
        let src = "\
fun eval c = let cogen u = c in u end
fun compPoly p =
  case p of
    nil => code (fn x => 0)
  | a :: p' =>
      let cogen f = compPoly p'
          cogen a' = lift a
      in code (fn x => a' + (x * f x)) end
val gen = compPoly [2, 4, 0, 2333]
val f = eval gen;
f 47";
        // 2 + 4*47 + 0 + 2333*47^3 = 2 + 188 + 2333 * 103823
        let expected = 2 + 4 * 47 + 2333i64 * 47 * 47 * 47;
        assert_eq!(run_program(src).to_string(), expected.to_string());
    }

    #[test]
    fn code_does_not_capture_value_env() {
        // A value variable used under `code` is a runtime unbound error in
        // the interpreter (the type checker rejects it statically).
        let p = parse_program(
            "fun eval c = let cogen u = c in u end\n\
             val y = 5;\n\
             eval (code y)",
        )
        .unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let err = Interp::new().eval_decls(&decls).unwrap_err();
        assert!(matches!(err, EvalError::Unbound(_)));
    }

    #[test]
    fn refs_and_sequencing() {
        assert_eq!(
            run("let val r = ref 1 in (r := !r + 41; !r) end").to_string(),
            "42"
        );
    }

    #[test]
    fn arrays_work() {
        assert_eq!(
            run_program(
                "val a = array (4, 0)\n\
                 val u = update (a, 2, 9);\n\
                 sub (a, 2) + length a"
            )
            .to_string(),
            "13"
        );
    }

    #[test]
    fn out_of_fuel() {
        let p = parse_program("fun loop n = loop n;\nloop 0").unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let err = Interp::with_fuel(200).eval_decls(&decls).unwrap_err();
        assert!(matches!(err, EvalError::OutOfFuel { .. }));
    }

    #[test]
    fn inexhaustive_match_fails() {
        let p = parse_program("fun f xs = case xs of a :: p => a;\nf nil").unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let err = Interp::new().eval_decls(&decls).unwrap_err();
        assert!(matches!(err, EvalError::Fail(_)));
    }

    #[test]
    fn multi_stage_code_inside_code() {
        // Dynamically generated code that itself generates code.
        let src = "\
fun eval c = let cogen u = c in u end
fun compPoly p =
  case p of
    nil => code (fn x => 0)
  | a :: p' =>
      let cogen f = compPoly p'
          cogen a' = lift a
      in code (fn x => a' + (x * f x)) end
val client =
  let cogen cp = lift compPoly
  in code (fn p => let cogen inner = cp p in inner end) end
val stage1 = eval client
val f = stage1 [3, 2];
f 10";
        // 3 + 10*2 = 23
        assert_eq!(run_program(src).to_string(), "23");
    }

    #[test]
    fn print_collects_output() {
        let p = parse_program("print \"a\"; print \"b\"").unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        let mut i = Interp::new();
        i.eval_decls(&decls).unwrap();
        assert_eq!(i.output(), "ab");
    }

    #[test]
    fn string_ops() {
        assert_eq!(run("size (\"abc\" ^ \"de\")").to_string(), "5");
        assert_eq!(run("itos 42").to_string(), "\"42\"");
    }

    #[test]
    fn case_with_datatype() {
        assert_eq!(
            run_program(
                "datatype shape = Circle of int | Square of int | Point\n\
                 fun area s = case s of Circle r => 3 * r * r | Square w => w * w | Point => 0;\n\
                 area (Circle 2) + area (Square 3) + area Point"
            )
            .to_string(),
            "21"
        );
    }

    #[test]
    fn codegen_happens_at_each_use() {
        // Each *use* of u re-runs the generator; with a lift the value is
        // shared. Here we check a generator with an effect: every use of u
        // re-evaluates the suspension.
        let src = "\
val r = ref 0
val g = code (fn _ => ())
fun eval c = let cogen u = c in u end
val x = (r := !r + 1; eval g);
!r";
        assert_eq!(run_program(src).to_string(), "1");
    }
}
