//! Run-time values of the reference interpreter.
//!
//! The representation mirrors the CCAM's ([`ccam::value::Value`]-like
//! pairs, identity-compared refs/arrays) so that rendered values compare
//! textually across the two back ends in differential tests.

use mlbox_ir::core::{CExprS, FunDef};
use mlbox_ir::name::Name;
use mlbox_ir::ConId;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A persistent environment: `Name → RVal`, shared via `Rc`.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: RVal,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Name, value: RVal) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    /// Looks up a name.
    pub fn get(&self, name: &Name) -> Option<&RVal> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// A persistent modal environment: `Name → GenRep`.
#[derive(Debug, Clone, Default)]
pub struct CodeEnv(Option<Rc<CodeEnvNode>>);

#[derive(Debug)]
struct CodeEnvNode {
    name: Name,
    rep: GenRep,
    rest: CodeEnv,
}

impl CodeEnv {
    /// The empty modal environment.
    pub fn empty() -> CodeEnv {
        CodeEnv(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Name, rep: GenRep) -> CodeEnv {
        CodeEnv(Some(Rc::new(CodeEnvNode {
            name,
            rep,
            rest: self.clone(),
        })))
    }

    /// Looks up a name.
    pub fn get(&self, name: &Name) -> Option<&GenRep> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.rep);
            }
            cur = &node.rest;
        }
        None
    }
}

/// The representation of a generator value (type `□A`).
#[derive(Debug, Clone)]
pub enum GenRep {
    /// A suspension ⟨M, δ⟩ — the body of a `code` expression together with
    /// the modal environment captured at its evaluation.
    Susp {
        /// The suspended body.
        body: Rc<CExprS>,
        /// The captured modal environment.
        cenv: CodeEnv,
    },
    /// A quoted value, produced by `lift`.
    Quote(Rc<RVal>),
}

/// An ordinary closure.
#[derive(Debug)]
pub struct RClosure {
    /// Captured value environment.
    pub env: Env,
    /// Captured modal environment (Δ persists under λ).
    pub cenv: CodeEnv,
    /// Parameter.
    pub param: Name,
    /// Body.
    pub body: Rc<CExprS>,
}

/// A member of a recursive function group.
#[derive(Debug)]
pub struct RRecGroup {
    /// Environment captured at group creation.
    pub env: Env,
    /// Modal environment captured at group creation.
    pub cenv: CodeEnv,
    /// The group's definitions.
    pub defs: Rc<Vec<FunDef>>,
}

/// An interpreter value.
#[derive(Debug, Clone)]
pub enum RVal {
    /// Unit.
    Unit,
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<str>),
    /// Pair (tuples are right-nested pairs, as on the CCAM).
    Pair(Rc<(RVal, RVal)>),
    /// Datatype constructor.
    Con(ConId, Option<Rc<RVal>>),
    /// Closure.
    Closure(Rc<RClosure>),
    /// Recursive closure group member.
    RecClosure {
        /// The shared group.
        group: Rc<RRecGroup>,
        /// Which member.
        index: usize,
    },
    /// A generator (type `□A`).
    Gen(GenRep),
    /// Mutable reference cell.
    Ref(Rc<RefCell<RVal>>),
    /// Mutable array.
    Array(Rc<RefCell<Vec<RVal>>>),
}

impl RVal {
    /// Builds a pair.
    pub fn pair(a: RVal, b: RVal) -> RVal {
        RVal::Pair(Rc::new((a, b)))
    }

    /// Builds a right-nested tuple.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn tuple(parts: Vec<RVal>) -> RVal {
        let mut it = parts.into_iter().rev();
        let mut acc = it.next().expect("tuple must be non-empty");
        for v in it {
            acc = RVal::pair(v, acc);
        }
        acc
    }

    /// Structural equality (same contract as the machine's).
    pub fn structural_eq(&self, other: &RVal) -> Option<bool> {
        match (self, other) {
            (RVal::Unit, RVal::Unit) => Some(true),
            (RVal::Int(a), RVal::Int(b)) => Some(a == b),
            (RVal::Bool(a), RVal::Bool(b)) => Some(a == b),
            (RVal::Str(a), RVal::Str(b)) => Some(a == b),
            (RVal::Pair(a), RVal::Pair(b)) => {
                Some(a.0.structural_eq(&b.0)? && a.1.structural_eq(&b.1)?)
            }
            (RVal::Con(ta, pa), RVal::Con(tb, pb)) => {
                if ta != tb {
                    return Some(false);
                }
                match (pa, pb) {
                    (None, None) => Some(true),
                    (Some(a), Some(b)) => a.structural_eq(b),
                    _ => Some(false),
                }
            }
            (RVal::Ref(a), RVal::Ref(b)) => Some(Rc::ptr_eq(a, b)),
            (RVal::Array(a), RVal::Array(b)) => Some(Rc::ptr_eq(a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for RVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RVal::Unit => f.write_str("()"),
            RVal::Int(n) => write!(f, "{n}"),
            RVal::Bool(b) => write!(f, "{b}"),
            RVal::Str(s) => write!(f, "{s:?}"),
            RVal::Pair(p) => write!(f, "({}, {})", p.0, p.1),
            RVal::Con(tag, None) => write!(f, "con{}", tag.0),
            RVal::Con(tag, Some(v)) => write!(f, "con{}({})", tag.0, v),
            RVal::Closure(_) | RVal::RecClosure { .. } | RVal::Gen(_) => f.write_str("<fn>"),
            RVal::Ref(v) => write!(f, "ref {}", v.borrow()),
            RVal::Array(a) => {
                f.write_str("[|")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("|]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_ir::name::NameGen;

    #[test]
    fn env_lookup_finds_innermost() {
        let mut names = NameGen::new();
        let x1 = names.fresh("x");
        let x2 = names.fresh("x");
        let env = Env::empty()
            .bind(x1.clone(), RVal::Int(1))
            .bind(x2.clone(), RVal::Int(2));
        assert!(matches!(env.get(&x1), Some(RVal::Int(1))));
        assert!(matches!(env.get(&x2), Some(RVal::Int(2))));
        assert!(env.get(&names.fresh("y")).is_none());
    }

    #[test]
    fn tuple_display_matches_machine_format() {
        let t = RVal::tuple(vec![RVal::Int(1), RVal::Int(2), RVal::Int(3)]);
        assert_eq!(t.to_string(), "(1, (2, 3))");
    }

    #[test]
    fn structural_eq_mirrors_machine() {
        let a = RVal::Con(ConId(1), Some(Rc::new(RVal::Int(3))));
        let b = RVal::Con(ConId(1), Some(Rc::new(RVal::Int(3))));
        assert_eq!(a.structural_eq(&b), Some(true));
    }
}
