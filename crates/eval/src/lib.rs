//! Reference big-step interpreter for the MLbox core IR, implementing the
//! standard staged semantics of λ□ (Davies–Pfenning):
//!
//! - `code M` evaluates to a **suspension** ⟨M, δ⟩ capturing the modal
//!   environment δ (code variables only — the value environment is *not*
//!   captured, mirroring the typing rule that clears Γ under `code`);
//! - `lift M` evaluates `M` to `v` and produces the quoting generator;
//! - `let cogen u = M in N` binds the suspension in δ;
//! - *using* a code variable in ordinary position evaluates its suspension
//!   under an empty value environment.
//!
//! This is the semantics the modal type system is sound for, and the
//! differential-testing oracle for the CCAM compiler: compiled programs
//! must produce the same observable values as this interpreter.

pub mod interp;
pub mod value;

pub use interp::{EvalError, Interp};
pub use value::RVal;
