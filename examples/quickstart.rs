//! Quickstart: write a staged MLbox program, type-check it, compile it to
//! the CCAM, generate code at run time, and observe the speedup.
//!
//! Run with: `cargo run --example quickstart`

use mlbox::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new()?;

    // A staged power function: the exponent is early, the base is late.
    // `codePower e` builds a *generator*; `eval` invokes it, emitting
    // CCAM code specialized to that exponent.
    let outcomes = session.run(
        "fun codePower e =
           if e = 0 then code (fn b => 1)
           else let cogen p = codePower (e - 1)
                in code (fn b => b * (p b)) end",
    )?;
    println!(
        "codePower : {}  (the $ is the modal □ type of code generators)",
        outcomes[0].ty
    );

    // Generate code for b^16 — once.
    let gen = session.run("val pow16 = eval (codePower 16)")?;
    println!(
        "generated pow16: {} CCAM steps, {} instructions emitted",
        gen[0].stats.steps, gen[0].stats.emitted
    );

    // The generated code is an ordinary function...
    let fast = session.eval_expr("pow16 2")?;
    println!("pow16 2 = {} in {} steps", fast.value, fast.stats.steps);

    // ...and much cheaper than the unstaged equivalent.
    session.run("fun power (e, b) = if e = 0 then 1 else b * power (e - 1, b)")?;
    let slow = session.eval_expr("power (16, 2)")?;
    println!(
        "power (16, 2) = {} in {} steps",
        slow.value, slow.stats.steps
    );
    println!(
        "speedup: {:.1}x fewer reductions per call",
        slow.stats.steps as f64 / fast.stats.steps as f64
    );

    // Staging errors are type errors (the paper's central claim):
    let err = session
        .eval_expr("fn y => code (fn x => x + y)")
        .unwrap_err();
    println!("\nstaging error caught statically:\n{err}");
    Ok(())
}
