//! The paper's §3.3 packet-filter application: install a BPF predicate,
//! then compare interpreting it per packet (`evalpf`) against compiling
//! it to specialized code when installed (`bevalpf`) — the kernel
//! packet-filter scenario that motivated Fabius-style RTCG.
//!
//! Run with: `cargo run --example packet_filter`

use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::native::run_filter;
use mlbox_bpf::packet::PacketGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = telnet_filter();
    println!("installing filter (tcp dst port 23):");
    for (pc, insn) in filter.iter().enumerate() {
        println!("  ({pc:03}) {insn}");
    }

    let mut harness = FilterHarness::new(&filter)?;
    let mut packets = PacketGen::new(1998);

    // Specialize once at "install time".
    let gen = harness.specialize()?;
    println!(
        "\nspecialization: {} steps, {} instructions emitted\n",
        gen.steps, gen.emitted
    );

    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "packet", "verdict", "evalpf", "bevalpf"
    );
    let mut total_interp = 0u64;
    let mut total_staged = gen.steps;
    for pkt in packets.workload(10, 0.5) {
        let native = run_filter(&filter, &pkt.bytes);
        let (iv, isteps) = harness.interp(&pkt)?;
        let (sv, ssteps) = harness.specialized(&pkt)?;
        assert_eq!(native, iv);
        assert_eq!(native, sv);
        total_interp += isteps;
        total_staged += ssteps;
        println!(
            "{:<28} {:>8} {:>12} {:>12}",
            format!("{:?}", pkt.kind),
            if iv > 0 { "accept" } else { "reject" },
            isteps,
            ssteps
        );
    }
    println!(
        "\ntotals over 10 packets (incl. generation): interpreted {total_interp}, staged {total_staged}"
    );
    Ok(())
}
