//! The paper's §3.4 memoization example: cache specialized functions
//! (`memoPower1`) and generating extensions (`memoPower2`) so repeated
//! specialization requests do no repeated work.
//!
//! Run with: `cargo run --example memo_power`

use mlbox::{programs, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new()?;
    s.run(programs::CODE_POWER)?;
    s.run(programs::MEMO_POWER1)?;

    println!("memoPower1 (cache the specialized function):");
    let miss = s.eval_expr("memoPower1 16 2")?;
    println!(
        "  first call (miss): {} in {} steps, {} instrs generated",
        miss.value, miss.stats.steps, miss.stats.emitted
    );
    let hit = s.eval_expr("memoPower1 16 2")?;
    println!(
        "  second call (hit): {} in {} steps, {} instrs generated",
        hit.value, hit.stats.steps, hit.stats.emitted
    );

    println!("\nmemoPower2 (also share generating extensions across exponents):");
    let mut s2 = Session::new()?;
    s2.run(programs::MEMO_POWER2)?;
    let first = s2.eval_expr("memoPower2 60 2")?;
    println!("  2^60 from scratch: {} steps", first.stats.steps);
    let reuse = s2.eval_expr("memoPower2 34 2")?;
    println!(
        "  2^34 reusing extensions 0..34: {} steps (= {})",
        reuse.stats.steps, reuse.value
    );
    let mut cold = Session::new()?;
    cold.run(programs::MEMO_POWER2)?;
    let from_zero = cold.eval_expr("memoPower2 34 2")?;
    println!(
        "  2^34 in a cold session: {} steps — sharing saved {}",
        from_zero.stats.steps,
        from_zero.stats.steps - reuse.stats.steps
    );
    Ok(())
}
