//! Staging an interpreter away: a tiny arithmetic-expression language
//! interpreted by MLbox code, then *compiled* by the same code with
//! `code`/`lift`/`let cogen` — the general recipe behind the paper's
//! packet filter (a staged interpreter is a compiler).
//!
//! Run with: `cargo run --example staged_interpreter`

use mlbox::Session;

const LANG: &str = r#"
datatype aexp =
    Lit of int
  | Var
  | Add of aexp * aexp
  | Mul of aexp * aexp

(* The ordinary interpreter. *)
fun interp (e, x) =
  case e of
    Lit n => n
  | Var => x
  | Add (a, b) => interp (a, x) + interp (b, x)
  | Mul (a, b) => interp (a, x) * interp (b, x)

(* The staged interpreter: the expression is early, `x` is late.
   Invoking the generator compiles the expression to CCAM code. *)
fun comp e =
  case e of
    Lit n => let cogen n' = lift n in code (fn x => n') end
  | Var => code (fn x => x)
  | Add (a, b) =>
      let cogen ca = comp a
          cogen cb = comp b
      in code (fn x => ca x + cb x) end
  | Mul (a, b) =>
      let cogen ca = comp a
          cogen cb = comp b
      in code (fn x => ca x * cb x) end
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new()?;
    s.run(LANG)?;
    // (x + 3) * (x * x + 7)
    s.run("val e = Mul (Add (Var, Lit 3), Add (Mul (Var, Var), Lit 7))")?;

    let i = s.eval_expr("interp (e, 5)")?;
    println!("interp (e, 5)    = {} in {} steps", i.value, i.stats.steps);

    let gen = s.run("val f = eval (comp e)")?;
    println!(
        "compile e        : {} steps, {} instructions emitted",
        gen.last().unwrap().stats.steps,
        gen.last().unwrap().stats.emitted
    );

    let c = s.eval_expr("f 5")?;
    println!("compiled f 5     = {} in {} steps", c.value, c.stats.steps);
    assert_eq!(i.value, c.value);
    println!(
        "\nthe staged interpreter runs {:.1}x fewer reductions per call",
        i.stats.steps as f64 / c.stats.steps as f64
    );
    Ok(())
}
