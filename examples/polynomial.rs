//! The paper's §3.1 worked example: three ways to evaluate a polynomial —
//! interpreted (`evalPoly`), specialized to closures (`specPoly`), and
//! specialized to *generated CCAM code* (`compPoly`).
//!
//! Run with: `cargo run --example polynomial`

use mlbox::{programs, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new()?;
    s.run(programs::EVAL_POLY)?;
    s.run(programs::SPEC_POLY)?;
    s.run(programs::COMP_POLY)?;

    println!("polynomial: 2 + 4x + 0x^2 + 2333x^3 at x = 47\n");

    let interp = s.eval_expr("evalPoly (47, polyl)")?;
    println!(
        "evalPoly (interpreting the list):   {} = {} steps",
        interp.value, interp.stats.steps
    );

    let spec = s.eval_expr("polylTarget 47")?;
    println!(
        "specPoly closures (source staging): {} = {} steps",
        spec.value, spec.stats.steps
    );

    let staged = s.eval_expr("mlPolyFun 47")?;
    println!(
        "compPoly generated code (RTCG):     {} = {} steps",
        staged.value, staged.stats.steps
    );

    assert_eq!(interp.value, spec.value);
    assert_eq!(interp.value, staged.value);

    println!("\nTable 1 shape (paper numbers: 807 / 175 / 74):");
    println!(
        "  interpretation is {:.1}x the cost of the generated code",
        interp.stats.steps as f64 / staged.stats.steps as f64
    );

    // The one-time costs.
    let mut s2 = Session::new()?;
    s2.run(programs::EVAL_POLY)?;
    s2.run(programs::SPEC_POLY)?;
    let outs = s2.run(programs::COMP_POLY)?;
    for o in outs {
        if let Some(name) = &o.name {
            if name == "codeGenerator" || name == "mlPolyFun" {
                println!(
                    "  one-time {name}: {} steps ({} emitted)",
                    o.stats.steps, o.stats.emitted
                );
            }
        }
    }
    Ok(())
}
