//! The modal typing discipline (Figure 2): staging errors are type
//! errors, □ types propagate correctly, and the value restriction holds.

use mlbox::{Session, SessionOptions};

fn infer(src: &str) -> Result<String, String> {
    let mut s = Session::new().map_err(|e| e.to_string())?;
    s.eval_expr(src).map(|o| o.ty).map_err(|e| e.to_string())
}

fn infer_decls(src: &str) -> Result<String, String> {
    let mut s = Session::new().map_err(|e| e.to_string())?;
    s.run(src)
        .map(|outs| outs.last().map(|o| o.ty.clone()).unwrap_or_default())
        .map_err(|e| e.to_string())
}

#[test]
fn box_types_render_with_dollar() {
    assert_eq!(infer("code (fn x => x + 1)").unwrap(), "(int -> int) $");
    assert_eq!(infer("lift 3").unwrap(), "int $");
    assert_eq!(infer("code (code true)").unwrap(), "bool $ $");
}

#[test]
fn staging_violation_value_variable_under_code() {
    // The paper's central design point: "A staging error becomes a type
    // error which can be analyzed and fixed."
    let err = infer("fn y => code (fn x => x + y)").unwrap_err();
    assert!(err.contains("earlier stage"), "{err}");
}

#[test]
fn lift_fixes_the_staging_violation() {
    assert_eq!(
        infer("fn y => let cogen y' = lift y in code (fn x => x + y') end").unwrap(),
        "int -> (int -> int) $"
    );
}

#[test]
fn code_variables_usable_under_code() {
    assert!(infer("fn c => let cogen f = c in code (fn x => f (x + 0)) end").is_ok());
}

#[test]
fn code_variable_not_a_value_variable() {
    // Using u where a generator is expected vs using the generator value:
    // `let cogen u = c in u end` has the *unboxed* type.
    let t = infer("fn c => let cogen u = c in u end").unwrap();
    assert!(t.contains("$ ->"), "{t}");
    assert!(!t.ends_with('$'), "{t}");
}

#[test]
fn let_cogen_requires_a_generator() {
    let err = infer("let cogen u = 3 in u end").unwrap_err();
    assert!(err.contains("mismatch"), "{err}");
}

#[test]
fn comp_poly_has_the_papers_type() {
    let t = infer_decls(
        mlbox::programs::COMP_POLY
            .split("val codeGenerator")
            .next()
            .unwrap(),
    )
    .unwrap();
    // val compPoly : poly -> (int -> int) $
    assert_eq!(t, "int list -> (int -> int) $");
}

#[test]
fn bevalpf_has_the_papers_type() {
    let mut s = Session::new().unwrap();
    let outs = s.run(mlbox_bpf::mlsrc::BPF_ML).unwrap();
    let bev = outs
        .iter()
        .find(|o| o.name.as_deref() == Some("bevalpf"))
        .expect("bevalpf bound");
    assert_eq!(
        bev.ty,
        "(instruction array * int) -> ((int * int * int array) -> int) $"
    );
}

#[test]
fn polymorphic_generators() {
    // composeGen : ('b -> 'c)$ * ('a -> 'b)$ -> ('a -> 'c)$  (monomorphic
    // rendering may pick concrete letters; check the shape).
    let mut s = Session::new().unwrap();
    let outs = s.run(mlbox::programs::COMPOSE_GEN).unwrap();
    let t = &outs.last().unwrap().ty;
    assert!(t.matches('$').count() == 3, "{t}");
}

#[test]
fn value_restriction_applies_to_cogen() {
    // An applied expression is not a value: its □-content stays mono.
    // (This only checks it still typechecks and runs.)
    let mut s = Session::new().unwrap();
    s.run("fun idGen u = code (fn x => x)").unwrap();
    assert!(s
        .run("val r = let cogen g = idGen () in (g 1, g 2) end")
        .is_ok());
}

#[test]
fn branches_and_arms_must_agree() {
    assert!(infer("if true then 1 else false").is_err());
    assert!(infer_decls("datatype t = A | B\nfun f x = case x of A => 1 | B => true").is_err());
}

#[test]
fn occurs_check_and_infinite_types() {
    let err = infer("fn x => x x").unwrap_err();
    assert!(err.contains("infinite"), "{err}");
}

#[test]
fn ascriptions_constrain() {
    assert!(infer("(fn x => x) : int -> int").is_ok());
    assert!(infer("(fn x => x + 1) : bool -> bool").is_err());
    assert!(infer("(code (fn x => x + 1)) : (int -> int) $").is_ok());
}

#[test]
fn typecheck_can_be_disabled() {
    // With the checker off, a staging violation is caught by the compiler
    // instead (defense in depth).
    let mut s = Session::with_options(SessionOptions {
        typecheck: false,
        ..Default::default()
    })
    .unwrap();
    let err = s.eval_expr("fn y => code (fn x => x + y)").unwrap_err();
    assert!(err.to_string().contains("earlier stage"), "{err}");
}

#[test]
fn error_rendering_points_at_source() {
    let mut s = Session::new().unwrap();
    let err = s.run("val bad = fn y => code (fn x => x + y)").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('^'), "{msg}");
    assert!(msg.contains("code (fn x => x + y)"), "{msg}");
}
