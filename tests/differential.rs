//! Differential testing: the compiled CCAM must agree with the reference
//! λ□ interpreter on every observable value. A fixed corpus covers each
//! construct; property-based tests then sweep randomly generated
//! programs, both unstaged and staged.

use mlbox::differential::{run_both, run_both_full};
use mlbox::EnvMode;
use proptest::prelude::*;

/// Renders an integer in SML concrete syntax (`~` for negation).
fn ml_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", -n)
    } else {
        n.to_string()
    }
}

/// Asserts machine/interpreter agreement across the full 3×2×2
/// execution-mode matrix — environment access (pair-spine vs indexed vs
/// flat frames) × superinstruction fusion (off vs on) × dispatch tier
/// (interpreted vs thread-coded native) — and that all twelve compiled
/// runs observe identical values and output. Returns the shared
/// rendering.
fn assert_agree_both_modes(src: &str) -> String {
    let mut baseline: Option<(String, String)> = None;
    for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
        for fuse in [false, true] {
            for native in [false, true] {
                let r = run_both_full(src, true, mode, fuse, native).unwrap();
                assert!(
                    r.agree(),
                    "{mode:?}/fuse={fuse}/native={native} disagreement on:\n{src}\n machine: {} (out {:?})\n interp:  {} (out {:?})",
                    r.machine,
                    r.machine_output,
                    r.interp,
                    r.interp_output
                );
                match &baseline {
                    None => baseline = Some((r.machine, r.machine_output)),
                    Some((v, o)) => assert_eq!(
                        (v, o),
                        (&r.machine, &r.machine_output),
                        "execution modes disagree ({mode:?}, fuse={fuse}, native={native}) on:\n{src}"
                    ),
                }
            }
        }
    }
    baseline.unwrap().0
}

#[test]
fn corpus_agrees() {
    for src in [
        // Arithmetic, comparison, branching.
        "1 + 2 * 3 - 4 div 2",
        "if 3 < 5 then ~1 else 1",
        "band (12, 10) + (7 mod 3)",
        // SML floor division: div rounds toward negative infinity, mod
        // takes the divisor's sign.
        "(~7 div 2, ~7 mod 2)",
        "(7 div ~2, 7 mod ~2)",
        "(~7 div ~2, ~7 mod ~2)",
        "eval (code (fn x => (x div ~3, x mod ~3))) ~10",
        // Functions and currying.
        "(fn x => fn y => x * 10 + y) 4 2",
        "let val f = fn (a, b) => a - b in f (10, 3) end",
        // Recursion.
        "fun fact n = if n = 0 then 1 else n * fact (n - 1);\nfact 8",
        "fun even n = if n = 0 then true else odd (n - 1)\nand odd n = if n = 0 then false else even (n - 1);\neven 9",
        // Data.
        "map (fn x => x + 1) (rev [1, 2, 3])",
        "datatype t = A | B of int * int\nfun f x = case x of A => 0 | B (a, b) => a * b;\nf (B (6, 7))",
        "case SOME (1, 2) of NONE => 0 | SOME (a, b) => a + b",
        // Effects.
        "val r = ref 1\nval u = (r := !r * 5);\n!r",
        "val a = array (3, 9)\nval u = update (a, 1, 4);\nsub (a, 0) + sub (a, 1)",
        "print \"out\"; size \"four\"",
        // Staging.
        "eval (lift (3 * 3))",
        "eval (code (fn x => x + 1)) 41",
        "let cogen k = lift 5 in eval (code (fn x => x * k)) end 9",
        "fun cp p = case p of nil => code (fn x => 0) | a :: r => let cogen f = cp r cogen a' = lift a in code (fn x => a' + (x * f x)) end;\neval (cp [3, 1, 4]) 10",
        // Multi-stage.
        "val g = code (fn a => let cogen a' = lift a in code (fn b => a' - b) end);\neval (eval g 50) 8",
        // Generators with effects at generation time.
        "val r = ref 0\nfun g u = (r := !r + 1; code (fn x => x))\nval h = eval (g ());\n(h 5, !r)",
    ] {
        assert_agree_both_modes(src);
    }
}

#[test]
fn fuel_exhaustion_parity_across_all_modes() {
    // Fuel is charged in pair-spine units (`acc n` costs n+1, a fused
    // superinstruction the sum of its components, `env_cons` one cons),
    // so a budget must exhaust at exactly the same point in every
    // execution mode — fusion, flat environments, or thread-coded
    // dispatch can't smuggle extra work past a limit, nor make a budget
    // spuriously tighter.
    use mlbox::{Session, SessionOptions};
    let prog = "fun cp e = if e = 0 then code (fn b => 1)\n\
                else let cogen p = cp (e - 1) in code (fn b => b * (p b)) end;\n\
                eval (cp 6) 2";
    let opts = |flat: bool, indexed: bool, fuse: bool, native: bool| SessionOptions {
        indexed_env: indexed,
        flat_env: flat,
        fuse,
        native,
        ..Default::default()
    };
    let runs_with = |o: &SessionOptions, fuel: u64| -> bool {
        let mut o = o.clone();
        o.fuel = Some(fuel);
        match Session::with_options(o) {
            Ok(mut s) => s.run(prog).is_ok(),
            // The prelude itself ran out of fuel.
            Err(_) => false,
        }
    };
    // Bisect the default mode's minimal sufficient budget...
    let base = opts(false, false, false, false);
    let (mut lo, mut hi) = (1u64, 10_000_000u64);
    assert!(runs_with(&base, hi), "budget ceiling too small");
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if runs_with(&base, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let minimal = lo;
    // ...and every mode combination must exhaust at exactly that point.
    for (flat, indexed) in [(false, false), (false, true), (true, false)] {
        for fuse in [false, true] {
            for native in [false, true] {
                let o = opts(flat, indexed, fuse, native);
                assert!(
                    runs_with(&o, minimal),
                    "flat={flat} indexed={indexed} fuse={fuse} native={native} fails at the minimal budget {minimal}"
                );
                assert!(
                    !runs_with(&o, minimal - 1),
                    "flat={flat} indexed={indexed} fuse={fuse} native={native} succeeds below the minimal budget {minimal}"
                );
            }
        }
    }
}

#[test]
fn both_backends_reject_staging_violations() {
    let r = run_both("fn y => code (fn x => x + y)", true);
    assert!(r.is_err(), "staging violations are static errors");
}

// ---------------------------------------------------------------------
// Property-based differential testing
// ---------------------------------------------------------------------

/// A generator of closed integer expressions over one bound variable `v`.
fn int_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-20i64..100).prop_map(|n| if n < 0 {
            format!("~{}", -n)
        } else {
            n.to_string()
        }),
        Just("v".to_string()),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| format!("(if {c} < {a} then {a} else {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(let val v = {a} in {b} end)")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("((fn v => {b}) {a})")),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_unstaged_programs_agree(body in int_expr(4), arg in -10i64..50) {
        let src = format!("(fn v => {body}) {}", ml_int(arg));
        assert_agree_both_modes(&src);
    }

    #[test]
    fn random_staged_programs_agree(body in int_expr(3), early in -10i64..50, late in -10i64..50) {
        // Stage the expression: `early` is lifted, `late` is the run-time
        // argument of the generated code.
        let src = format!(
            "let cogen e = lift {} in eval (code (fn v => {body} + e)) end {}",
            ml_int(early),
            ml_int(late)
        );
        assert_agree_both_modes(&src);
    }

    #[test]
    fn random_generators_compose(a in int_expr(2), b in int_expr(2), arg in -5i64..30) {
        let src = format!(
            "val g1 = code (fn v => {a})\n\
             val g2 = code (fn v => {b})\n\
             val both = let cogen f = g1 cogen g = g2 in code (fn v => f (g v)) end;\n\
             eval both {}",
            ml_int(arg)
        );
        assert_agree_both_modes(&src);
    }

    #[test]
    fn random_list_programs_agree(items in proptest::collection::vec(-50i64..50, 0..8)) {
        let list = items
            .iter()
            .map(|n| if *n < 0 { format!("~{}", -n) } else { n.to_string() })
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(
            "fun sum xs = case xs of nil => 0 | a :: r => a + sum r;\n\
             (sum [{list}], listLength (rev [{list}]))"
        );
        assert_agree_both_modes(&src);
    }

    #[test]
    fn random_polynomials_staged_vs_interp(coeffs in proptest::collection::vec(0i64..100, 1..6), x in 0i64..20) {
        let list = coeffs
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(
            "fun evalPoly (x, p) = case p of nil => 0 | a :: r => a + (x * evalPoly (x, r))\n\
             fun compPoly p = case p of nil => code (fn x => 0) | a :: r => \
               let cogen f = compPoly r cogen a' = lift a in code (fn x => a' + (x * f x)) end\n\
             val staged = eval (compPoly [{list}]);\n\
             (staged {x}, evalPoly ({x}, [{list}]))"
        );
        let result = assert_agree_both_modes(&src);
        // And the two components agree with each other.
        let inner = result.trim_start_matches('(').trim_end_matches(')');
        let (a, b) = inner.split_once(", ").expect("pair");
        assert_eq!(a, b, "staged vs interpreted polynomial");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_case_under_code_agrees(
        arms in proptest::collection::vec(-20i64..20, 1..4),
        pick in 0usize..4,
        arg in -10i64..10,
    ) {
        // Dispatch on a list inside generated code.
        let k = arms.get(pick).copied().unwrap_or(0);
        let src = format!(
            "val g = code (fn xs => case xs of nil => {} | a :: _ => a + 1);\n\
             (eval g [{}], eval g [])",
            ml_int(arms[0]),
            ml_int(k),
        );
        assert_agree_both_modes(&src);
        let _ = arg;
    }

    #[test]
    fn random_staged_recursion_agrees(n in 0i64..12, m in 0i64..12) {
        // Recursion at generation time (the codePower pattern).
        let src = format!(
            "fun cp e = if e = 0 then code (fn b => 1)\n\
                        else let cogen p = cp (e - 1) in code (fn b => b * (p b)) end;\n\
             (eval (cp {n}) 2, eval (cp {m}) 3)"
        );
        assert_agree_both_modes(&src);
    }

    #[test]
    fn random_branch_shapes_under_code_agree(c in -5i64..5, t in -20i64..20, f in -20i64..20) {
        let src = format!(
            "val g = code (fn x => if x < {} then {} else {});\n\
             (eval g 0, eval g ~10, eval g 10)",
            ml_int(c), ml_int(t), ml_int(f)
        );
        assert_agree_both_modes(&src);
    }

    #[test]
    fn negative_div_mod_agree_everywhere(
        a in -60i64..60,
        b in 1i64..10,
        negate in proptest::bool::ANY,
    ) {
        // Machine vs oracle, and — with both operands lifted so the §4.2
        // optimizer constant-folds the division — optimized vs plain.
        let d = if negate { -b } else { b };
        let src = format!(
            "let cogen a' = lift {} cogen b' = lift {} in eval (code (fn u => (a' div b', a' mod b'))) end 0",
            ml_int(a),
            ml_int(d)
        );
        let plain = assert_agree_both_modes(&src);
        use mlbox::{Session, SessionOptions};
        for (indexed_env, fuse) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut s = Session::with_options(SessionOptions {
                optimize: true,
                indexed_env,
                fuse,
                ..Default::default()
            })
            .unwrap();
            let out = s.run(&src).unwrap();
            prop_assert_eq!(&out.last().unwrap().value, &plain);
        }
    }

    #[test]
    fn optimizer_agrees_with_interpreter_on_random_polys(
        coeffs in proptest::collection::vec(0i64..5, 1..5),
        x in 0i64..10,
    ) {
        // The §4.2 optimizer (small coefficients exercise the 0/1
        // identity rules) must preserve the interpreter's answers.
        use mlbox::{Session, SessionOptions};
        let list = coeffs
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(
            "fun evalPoly (x, p) = case p of nil => 0 | a :: r => a + (x * evalPoly (x, r))\n\
             fun compPoly p = case p of nil => code (fn x => 0) | a :: r => \
               let cogen f = compPoly r cogen a' = lift a in code (fn x => a' + (x * f x)) end;\n\
             (eval (compPoly [{list}]) {x}, evalPoly ({x}, [{list}]))"
        );
        for indexed_env in [false, true] {
            let mut s = Session::with_options(SessionOptions {
                optimize: true,
                indexed_env,
                ..Default::default()
            })
            .unwrap();
            let out = s.run(&src).unwrap();
            let v = &out.last().unwrap().value;
            let inner = v.trim_start_matches('(').trim_end_matches(')');
            let (a, b) = inner.split_once(", ").expect("pair");
            prop_assert_eq!(a, b, "optimized staged vs interpreted");
        }
    }
}
