//! End-to-end tests of every program in the paper's §3, plus assertions
//! that the *shape* of Table 1 holds on our CCAM (DESIGN.md §4).

use mlbox::{programs, Session};
use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::packet::PacketGen;

const POLY_47: i64 = 2 + 4 * 47 + 2333 * 47 * 47 * 47;

#[test]
fn section_3_1_eval_poly() {
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    assert_eq!(
        s.eval_expr("evalPoly (47, polyl)").unwrap().value,
        POLY_47.to_string()
    );
    assert_eq!(s.eval_expr("evalPoly (5, [])").unwrap().value, "0");
}

#[test]
fn section_3_1_spec_poly() {
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    s.run(programs::SPEC_POLY).unwrap();
    assert_eq!(
        s.eval_expr("polylTarget 47").unwrap().value,
        POLY_47.to_string()
    );
}

#[test]
fn section_3_1_comp_poly_types() {
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    let outs = s.run(programs::COMP_POLY).unwrap();
    let comp_poly_ty = &outs[0].ty;
    assert_eq!(comp_poly_ty, "int list -> (int -> int) $");
    assert_eq!(
        s.eval_expr("mlPolyFun 47").unwrap().value,
        POLY_47.to_string()
    );
}

#[test]
fn table1_polynomial_shape() {
    // The orderings of Table 1 rows 5-10.
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    s.run(programs::SPEC_POLY).unwrap();
    let eval_poly = s.eval_expr("evalPoly (47, polyl)").unwrap().stats.steps;
    let target = s.eval_expr("polylTarget 47").unwrap().stats.steps;
    let outs = s.run(programs::COMP_POLY).unwrap();
    let comp_build = outs
        .iter()
        .find(|o| o.name.as_deref() == Some("codeGenerator"))
        .unwrap()
        .stats
        .steps;
    let generate = outs
        .iter()
        .find(|o| o.name.as_deref() == Some("mlPolyFun"))
        .unwrap()
        .stats
        .steps;
    let staged = s.eval_expr("mlPolyFun 47").unwrap().stats.steps;

    // Paper: 807 (evalPoly) > 175 (polylTarget) > 74 (mlPolyFun).
    assert!(staged < target, "staged {staged} < spec-closures {target}");
    assert!(target < eval_poly, "spec {target} < interp {eval_poly}");
    // Paper ratio evalPoly/mlPolyFun ≈ 10.9; ours must be at least 3x.
    assert!(eval_poly >= 3 * staged, "{eval_poly} vs {staged}");
    // Generation costs are one-time and bounded (paper: 553 + 200 < 807).
    assert!(comp_build + generate < 4 * eval_poly);
}

#[test]
fn table1_packet_filter_shape() {
    let filter = telnet_filter();
    let mut h = FilterHarness::new(&filter).unwrap();
    let mut g = PacketGen::new(1998);
    let telnet = g.telnet(32);

    let (v1, interp_first) = h.interp(&telnet).unwrap();
    let (v2, interp_nth) = h.interp(&telnet).unwrap();
    assert!(v1 > 0 && v2 > 0);
    // Paper: evalpf steps identical on first and nth packet (9163 = 9163).
    assert_eq!(interp_first, interp_nth);

    let gen = h.specialize().unwrap();
    let (v3, run_first) = h.specialized(&telnet).unwrap();
    let (v4, run_nth) = h.specialized(&telnet).unwrap();
    assert!(v3 > 0 && v4 > 0);
    assert_eq!(run_first, run_nth);

    // Paper: bevalpf first (11984) > evalpf (9163): generation overhead.
    assert!(gen.steps + run_first > interp_first);
    // Paper: bevalpf nth (1104) ≪ evalpf (9163), ratio ≈ 8.3; require ≥ 3.
    assert!(interp_nth >= 3 * run_nth, "{interp_nth} vs {run_nth}");
}

#[test]
fn section_3_2_library_client() {
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    s.run(programs::COMP_POLY).unwrap();
    s.run(programs::CLIENT).unwrap();
    s.run("val stage1 = eval client").unwrap();
    // Dynamically generated code invokes compPoly: stage-2 generation.
    let out = s.eval_expr("stage1 2 10").unwrap();
    assert_eq!(out.value, (14 + 10 * 7).to_string());
    assert!(
        out.stats.emitted > 0,
        "stage-2 code was generated at run time"
    );
}

#[test]
fn section_3_3_packet_filter_verdicts_match_native() {
    let filter = telnet_filter();
    let mut h = FilterHarness::new(&filter).unwrap();
    let mut g = PacketGen::new(77);
    for pkt in g.workload(20, 0.4) {
        let native = mlbox_bpf::native::run_filter(&filter, &pkt.bytes);
        let (iv, _) = h.interp(&pkt).unwrap();
        let (sv, _) = h.specialized(&pkt).unwrap();
        let (mv, _) = h.memo_specialized(&pkt).unwrap();
        assert_eq!(native, iv, "interp on {:?}", pkt.kind);
        assert_eq!(native, sv, "specialized on {:?}", pkt.kind);
        assert_eq!(native, mv, "memo-specialized on {:?}", pkt.kind);
    }
}

#[test]
fn section_3_4_code_power() {
    let mut s = Session::new().unwrap();
    s.run(programs::CODE_POWER).unwrap();
    for (e, b, expect) in [(0i64, 5i64, 1i64), (1, 5, 5), (10, 2, 1024), (3, 7, 343)] {
        assert_eq!(
            s.eval_expr(&format!("eval (codePower {e}) {b}"))
                .unwrap()
                .value,
            expect.to_string()
        );
    }
}

#[test]
fn section_3_4_memo_power1_no_regeneration_on_hit() {
    let mut s = Session::new().unwrap();
    s.run(programs::CODE_POWER).unwrap();
    s.run(programs::MEMO_POWER1).unwrap();
    let miss = s.eval_expr("memoPower1 12 2").unwrap();
    assert_eq!(miss.value, "4096");
    assert!(miss.stats.emitted > 0);
    let hit = s.eval_expr("memoPower1 12 2").unwrap();
    assert_eq!(hit.value, "4096");
    assert_eq!(hit.stats.emitted, 0, "cache hit must not regenerate");
}

#[test]
fn section_3_4_memo_power2_shares_subcomputations() {
    // "if it is called to compute, for instance, n^65 and then m^34 it
    // won't have to do any additional work to make a generating extension
    // for the second call."
    let mut warm = Session::new().unwrap();
    warm.run(programs::MEMO_POWER2).unwrap();
    warm.eval_expr("memoPower2 60 2").unwrap();
    let shared = warm.eval_expr("memoPower2 34 2").unwrap();

    let mut cold = Session::new().unwrap();
    cold.run(programs::MEMO_POWER2).unwrap();
    let unshared = cold.eval_expr("memoPower2 34 2").unwrap();

    assert_eq!(shared.value, unshared.value);
    assert!(
        shared.stats.steps < unshared.stats.steps,
        "sharing must save steps: {} vs {}",
        shared.stats.steps,
        unshared.stats.steps
    );
}

#[test]
fn section_2_compose_generators() {
    let mut s = Session::new().unwrap();
    s.run(programs::COMPOSE_GEN).unwrap();
    // The composition generator does not emit anything by itself...
    let out = s
        .run("val comp = composeGen (code (fn x => x * 2), code (fn x => x + 1))")
        .unwrap();
    assert_eq!(out.last().unwrap().stats.emitted, 0);
    // ...generation happens when the composite is invoked.
    let inv = s.eval_expr("eval comp 5").unwrap();
    assert_eq!(inv.value, "12");
    assert!(inv.stats.emitted > 0);
}

#[test]
fn eval_is_definable_not_primitive() {
    // The prelude defines eval = fn x => let cogen u = x in u end.
    let mut s = mlbox::Session::with_options(mlbox::SessionOptions {
        prelude: false,
        ..Default::default()
    })
    .unwrap();
    s.run("fun myEval c = let cogen u = c in u end;\nmyEval (code (fn x => x)) 9")
        .map(|outs| assert_eq!(outs.last().unwrap().value, "9"))
        .unwrap();
}
