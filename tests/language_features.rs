//! Broad surface-language coverage: the core-SML subset of §6
//! ("datatypes, reference cells, and arrays"), pattern matching, and the
//! prelude.

use mlbox::Session;

fn run(src: &str) -> String {
    let mut s = Session::new().unwrap();
    s.run(src).unwrap().last().unwrap().value.clone()
}

fn run_err(src: &str) -> String {
    let mut s = Session::new().unwrap();
    match s.run(src) {
        Ok(_) => panic!("expected failure for {src}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("1 + 2 * 3 - 4"), "3");
    assert_eq!(run("(1 + 2) * (3 - 4)"), "-3");
    // SML div/mod floor toward negative infinity; mod follows the
    // divisor's sign (Definition of Standard ML, not Rust's truncation).
    assert_eq!(run("~7 mod 3"), "2");
    assert_eq!(run("~7 div 3"), "-3");
    assert_eq!(run("7 mod ~3"), "-2");
    assert_eq!(run("7 div ~3"), "-3");
    assert_eq!(run("17 div 5"), "3");
    assert_eq!(run("band (12, 10)"), "8");
}

#[test]
fn booleans_and_short_circuit() {
    assert_eq!(run("true andalso false"), "false");
    assert_eq!(run("false orelse true"), "true");
    // Short-circuit: the right side must not run.
    assert_eq!(
        run("val r = ref 0\nval t = false andalso (r := 1; true);\n!r"),
        "0"
    );
    assert_eq!(run("not (1 = 2)"), "true");
}

#[test]
fn strings() {
    assert_eq!(run("\"foo\" ^ \"bar\""), "\"foobar\"");
    assert_eq!(run("size \"hello\""), "5");
    assert_eq!(run("itos (6 * 7)"), "\"42\"");
    // Comparison operators are typed at int only (SML overloading is out
    // of scope); string comparison is a type error.
    assert!(run_err("\"a\" < \"b\"").contains("mismatch"));
}

#[test]
fn tuples() {
    assert_eq!(run("(1, true, \"x\")"), "(1, (true, \"x\"))");
    assert_eq!(run("val (a, b, c) = (1, 2, 3);\na + b * c"), "7");
    assert_eq!(run("fst2 (9, 10) + snd2 (9, 10)"), "19");
}

#[test]
fn lists_and_prelude() {
    assert_eq!(run("[1, 2] = [1, 2]"), "true");
    assert_eq!(run("map (fn x => x * x) [1, 2, 3]"), "[1, 4, 9]");
    assert_eq!(run("rev (append ([1], [2, 3]))"), "[3, 2, 1]");
    assert_eq!(run("foldl (fn (a, x) => a + x, 0, [1, 2, 3, 4])"), "10");
    assert_eq!(run("nth ([5, 6, 7], 2)"), "7");
    assert_eq!(run("tabulate (4, fn i => i * i)"), "[0, 1, 4, 9]");
    assert_eq!(run("listLength []"), "0");
}

#[test]
fn datatypes_with_payloads() {
    let src = "\
datatype expr = Num of int | Plus of expr * expr | Neg of expr
fun evalE e =
  case e of
    Num n => n
  | Plus (a, b) => evalE a + evalE b
  | Neg a => ~(evalE a);
evalE (Plus (Num 3, Neg (Num 5)))";
    assert_eq!(run(src), "-2");
}

#[test]
fn polymorphic_datatypes_and_option() {
    assert_eq!(run("SOME 3"), "SOME 3");
    assert_eq!(run("case SOME 4 of NONE => 0 | SOME n => n"), "4");
    let src = "\
datatype ('a, 'b) either = L of 'a | R of 'b
fun getL e = case e of L a => SOME a | R b => NONE;
(getL (L 3), getL (R true))";
    assert_eq!(run(src), "(SOME 3, NONE)");
}

#[test]
fn nested_patterns() {
    assert_eq!(
        run("fun f xs = case xs of (a, 1) :: (b, 2) :: nil => a + b | _ => 0;\nf [(10, 1), (20, 2)]"),
        "30"
    );
    assert_eq!(
        run("fun g x = case x of SOME (a :: _) => a | SOME nil => ~1 | NONE => ~2;\ng (SOME [7])"),
        "7"
    );
}

#[test]
fn literal_patterns() {
    let src = "\
fun fib n = case n of 0 => 0 | 1 => 1 | k => fib (k - 1) + fib (k - 2);
fib 10";
    assert_eq!(run(src), "55");
    assert_eq!(
        run("fun f s = case s of \"yes\" => 1 | \"no\" => 0 | _ => ~1;\nf \"no\""),
        "0"
    );
    assert_eq!(
        run("fun b x = case x of true => \"t\" | false => \"f\";\nb false"),
        "\"f\""
    );
}

#[test]
fn clausal_functions_with_overlap() {
    let src = "\
fun evalPoly (x, nil) = 0
  | evalPoly (x, a::p) = a + (x * evalPoly (x, p));
evalPoly (2, [1, 2, 3])";
    assert_eq!(run(src), "17");
}

#[test]
fn inexhaustive_match_fails_at_runtime() {
    let err = run_err("fun f xs = case xs of a :: _ => a;\nf []");
    assert!(err.contains("match failure"), "{err}");
}

#[test]
fn references() {
    assert_eq!(run("val r = ref 10\nval u = (r := !r + 1);\n!r"), "11");
    // Reference identity.
    assert_eq!(run("val r = ref 0\nval s = ref 0;\nr = r"), "true");
    assert_eq!(run("val r = ref 0\nval s = ref 0;\nr = s"), "false");
}

#[test]
fn arrays() {
    let src = "\
val a = array (5, 0)
fun fill i = if i = 5 then () else (update (a, i, i * i); fill (i + 1))
val u = fill 0;
(sub (a, 4), length a)";
    assert_eq!(run(src), "(16, 5)");
    assert_eq!(run("fromList ([7, 8], 0)"), "[|7, 8|]");
}

#[test]
fn array_bounds_fail() {
    let err = run_err("val a = array (2, 0);\nsub (a, 5)");
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn division_by_zero_fails() {
    assert!(run_err("1 div 0").contains("zero"));
    assert!(run_err("1 mod 0").contains("zero"));
}

#[test]
fn sequencing_and_let_bodies() {
    assert_eq!(run("let val r = ref 0 in r := 5; !r + 1 end"), "6");
    assert_eq!(run("(1; 2; 3)"), "3");
}

#[test]
fn shadowing() {
    assert_eq!(run("val x = 1\nval x = x + 1\nval x = x * 10;\nx"), "20");
    assert_eq!(run("let val x = 1 in let val x = 2 in x end + x end"), "3");
}

#[test]
fn higher_order_functions_and_currying() {
    assert_eq!(run("fun add a b = a + b\nval add3 = add 3;\nadd3 4"), "7");
    assert_eq!(run("compose (fn x => x * 2, fn x => x + 1) 5"), "12");
}

#[test]
fn mutual_recursion() {
    let src = "\
fun isEven n = if n = 0 then true else isOdd (n - 1)
and isOdd n = if n = 0 then false else isEven (n - 1);
(isEven 100, isOdd 100)";
    assert_eq!(run(src), "(true, false)");
}

#[test]
fn type_abbreviations() {
    assert_eq!(
        run("type point = int * int\nfun dist ((a, b) : point) = a * a + b * b;\ndist ((3, 4))"),
        "25"
    );
}

#[test]
fn recursion_under_code() {
    let src = "\
val g = code (fn n =>
  let fun sum i = if i = 0 then 0 else i + sum (i - 1)
  in sum n end);
eval g 10";
    assert_eq!(run(src), "55");
}

#[test]
fn case_under_code() {
    let src = "\
datatype t = A | B of int
val g = code (fn x => case x of A => 0 | B n => n * 2);
(eval g (B 21), eval g A)";
    assert_eq!(run(src), "(42, 0)");
}

#[test]
fn lists_under_code() {
    let src = "\
val g = code (fn xs => case xs of nil => 0 | a :: _ => a);
eval g [9, 8]";
    assert_eq!(run(src), "9");
}

#[test]
fn print_side_effects() {
    let mut s = Session::new().unwrap();
    s.run("print \"a\"; print (itos 42); print \"b\"").unwrap();
    assert_eq!(s.take_output(), "a42b");
}

#[test]
fn comments_are_ignored() {
    assert_eq!(run("(* a comment (* nested *) *) 5"), "5");
}

#[test]
fn wildcard_and_unit_patterns() {
    assert_eq!(run("fun f _ = 7;\nf (1, 2)"), "7");
    assert_eq!(run("fun g () = 8;\ng ()"), "8");
}

#[test]
fn deep_recursion_on_the_machine_is_iterative() {
    // The CCAM uses an explicit control stack; deep MLbox recursion must
    // not overflow the Rust stack.
    let src = "\
fun count n = if n = 0 then 0 else 1 + count (n - 1);
count 50000";
    assert_eq!(run(src), "50000");
}

#[test]
fn exhaustiveness_warnings() {
    let mut s = Session::new().unwrap();
    s.take_warnings();
    // Non-exhaustive case.
    s.run("fun f xs = case xs of a :: _ => a").unwrap();
    let w = s.take_warnings();
    assert!(
        w.iter().any(|d| d.message.contains("not exhaustive")),
        "{w:?}"
    );
    // Exhaustive case: no warning.
    s.run("fun g xs = case xs of nil => 0 | a :: _ => a")
        .unwrap();
    assert!(s.take_warnings().is_empty());
    // Redundant arm.
    s.run("fun h x = case x of _ => 1 | 3 => 2").unwrap();
    let w = s.take_warnings();
    assert!(w.iter().any(|d| d.message.contains("redundant")), "{w:?}");
    // Refutable val binding.
    s.run("val (a :: _) = [1, 2]").unwrap();
    let w = s.take_warnings();
    assert!(
        w.iter().any(|d| d.message.contains("not exhaustive")),
        "{w:?}"
    );
}

#[test]
fn paper_programs_are_warning_clean_except_known() {
    // The paper's polynomial programs are exhaustive; the prelude's `nth`
    // is deliberately partial.
    let mut s = Session::new().unwrap();
    let prelude_warnings = s.take_warnings();
    assert!(
        prelude_warnings.iter().all(|d| {
            // only nth is partial in the prelude
            d.message.contains("not exhaustive")
        }),
        "{prelude_warnings:?}"
    );
    s.run(mlbox::programs::EVAL_POLY).unwrap();
    s.run(mlbox::programs::COMP_POLY).unwrap();
    assert!(s.take_warnings().is_empty());
}

#[test]
fn while_loops() {
    let src = "\
val i = ref 0
val acc = ref 0
val u = while !i < 10 do (acc := !acc + !i; i := !i + 1);
!acc";
    assert_eq!(run(src), "45");
    // Zero iterations.
    assert_eq!(
        run("val r = ref 7\nval u = while false do r := 0;\n!r"),
        "7"
    );
}

#[test]
fn val_rec() {
    assert_eq!(
        run("val rec fact = fn n => if n = 0 then 1 else n * fact (n - 1);\nfact 5"),
        "120"
    );
    let mut s = Session::new().unwrap();
    let err = s.run("val rec x = 3").unwrap_err();
    assert!(err.to_string().contains("fn-expression"), "{err}");
}

#[test]
fn while_under_code() {
    // A loop inside generated code (recursion specialized via merge_rec).
    let src = "\
val g = code (fn n =>
  let val i = ref 0
      val acc = ref 0
      val u = while !i < n do (acc := !acc + !i; i := !i + 1)
  in !acc end);
eval g 10";
    assert_eq!(run(src), "45");
}
