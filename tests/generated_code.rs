//! Inspects the *code that run-time specialization produces*, asserting
//! the paper's qualitative claims: the interpretive layer is gone from
//! generated code (no datatype dispatch, no interpretation loop), and
//! early values are embedded in the instruction stream as immediates
//! (Fabius-style instruction-stream encoding, §4.1).

use ccam::disasm::{census, disassemble};
use ccam::value::Value;
use mlbox::{programs, Session};
use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;

/// Extracts the body of a session value that is a closure.
fn closure_body(v: &Value) -> ccam::CodeRef {
    match v {
        Value::Closure(c) => c.body.clone(),
        other => panic!("expected a closure, got {other}"),
    }
}

fn body_census(body: &ccam::CodeRef) -> std::collections::BTreeMap<&'static str, usize> {
    census(&body.seg, body.block)
}

fn body_disasm(body: &ccam::CodeRef) -> String {
    disassemble(&body.seg, body.block)
}

#[test]
fn comp_poly_generated_code_has_no_dispatch() {
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    s.run(programs::COMP_POLY).unwrap();
    let f = s.eval_expr("mlPolyFun").unwrap().raw;
    let body = closure_body(&f);
    let c = body_census(&body);

    // The list representation is *interpreted away*: no switch (datatype
    // dispatch), no fail, no pack — only arithmetic and closure plumbing.
    assert!(!c.contains_key("switch"), "census: {c:?}");
    assert!(!c.contains_key("fail"), "census: {c:?}");
    assert!(!c.contains_key("pack"), "census: {c:?}");
    // No residual code-generation instructions either: the generated code
    // is ordinary straight-line code.
    for gen_instr in ["emit", "lift", "arena", "merge", "call"] {
        assert!(!c.contains_key(gen_instr), "{gen_instr} in {c:?}");
    }
    // The four coefficients are embedded as immediates.
    assert!(c["quote"] >= 4, "census: {c:?}");
    let text = body_disasm(&body);
    assert!(text.contains("quote 2333"), "constants inline:\n{text}");
}

#[test]
fn interpreter_compiled_code_still_has_dispatch() {
    // Contrast: the *interpreter* evalPoly, compiled ordinarily, contains
    // the very switch the generator eliminates.
    let mut s = Session::new().unwrap();
    s.run(programs::EVAL_POLY).unwrap();
    let f = s.eval_expr("evalPoly").unwrap().raw;
    let (seg, body) = match &f {
        Value::RecClosure { group, .. } => (group.seg.clone(), group.bodies[0]),
        other => panic!("expected a recursive closure, got {other}"),
    };
    let c = census(&seg, body);
    assert!(c.contains_key("switch"), "census: {c:?}");
}

#[test]
fn bevalpf_specialized_filter_has_no_instruction_dispatch() {
    let mut h = FilterHarness::new(&telnet_filter()).unwrap();
    // `pfc` wraps the generated function; inspect the generated code
    // itself by invoking the generator directly.
    let generated = h
        .session_mut()
        .eval_expr("eval (bevalpf (theFilter, 0))")
        .unwrap()
        .raw;
    let body = closure_body(&generated);
    let c = body_census(&body);
    // The BPF instruction datatype is never examined at packet time...
    assert!(!c.contains_key("switch"), "census: {c:?}");
    assert!(!c.contains_key("fail"), "census: {c:?}");
    // ...but the residual *packet* tests remain as branches.
    assert!(c.contains_key("branch"), "census: {c:?}");
    // Filter constants (ethertype 2048, port 23, ...) are immediates.
    let text = body_disasm(&body);
    assert!(text.contains("quote 2048"), "{text}");
    assert!(text.contains("quote 23"), "{text}");
}

#[test]
fn generator_bodies_are_emit_sequences() {
    // A generating extension (the closure a `code` expression evaluates
    // to) is encoded as a sequence of emits plus arena plumbing — it
    // never manipulates source terms (Fabius property 1, §4.1).
    let mut s = Session::new().unwrap();
    s.run("val g = code (fn x => x * 2 + 1)").unwrap();
    let g = s.eval_expr("g").unwrap().raw;
    let body = closure_body(&g);
    let c = body_census(&body);
    assert!(c.contains_key("emit"), "census: {c:?}");
    assert!(
        c.contains_key("merge"),
        "lambda bodies merge via Cur: {c:?}"
    );
    // Structural validity: no nested emits anywhere.
    ccam::instr::validate(&body.seg, &body.to_vec()).unwrap();
}

#[test]
fn lift_embeds_closure_values_as_immediates() {
    let mut s = Session::new().unwrap();
    s.run("fun double x = x * 2").unwrap();
    s.run("val g = let cogen d = lift double in code (fn x => d (x + 1)) end")
        .unwrap();
    s.run("val f = eval g").unwrap();
    let f = s.eval_expr("f").unwrap().raw;
    let text = body_disasm(&closure_body(&f));
    // The lifted closure appears as a quoted immediate operand.
    assert!(text.contains("quote <fn"), "{text}");
}

#[test]
fn generated_code_size_tracks_polynomial_degree() {
    let mut sizes = Vec::new();
    for degree in [1usize, 2, 4, 8] {
        let mut s = Session::new().unwrap();
        s.run(programs::EVAL_POLY).unwrap();
        s.run(programs::COMP_POLY).unwrap();
        let poly: Vec<String> = (0..=degree).map(|i| i.to_string()).collect();
        s.run(&format!("val f = eval (compPoly [{}])", poly.join(", ")))
            .unwrap();
        let f = s.eval_expr("f").unwrap().raw;
        let c = body_census(&closure_body(&f));
        sizes.push(c.values().sum::<usize>());
    }
    // Linear growth: each extra coefficient adds a constant chunk.
    let d01 = sizes[1] - sizes[0];
    let d12 = sizes[2] - sizes[1];
    assert_eq!(d12, 2 * d01, "sizes: {sizes:?}");
}

#[test]
fn optimizer_eliminates_the_zero_coefficient() {
    // polyl = [2, 4, 0, 2333]: the x^2 term contributes `0 + (x * f x)`.
    // §4.2 envisions eliminating such instructions at specialization
    // time; with the optimizing machine the addition of 0 disappears.
    use mlbox::SessionOptions;
    let run_with = |optimize: bool| {
        let mut s = mlbox::Session::with_options(SessionOptions {
            optimize,
            ..Default::default()
        })
        .unwrap();
        s.run(programs::EVAL_POLY).unwrap();
        s.run(programs::COMP_POLY).unwrap();
        let steps = s.eval_expr("mlPolyFun 47").unwrap();
        let f = s.eval_expr("mlPolyFun").unwrap().raw;
        let size: usize = body_census(&closure_body(&f)).values().sum();
        (steps.value.clone(), steps.stats.steps, size)
    };
    let (v_plain, steps_plain, size_plain) = run_with(false);
    let (v_opt, steps_opt, size_opt) = run_with(true);
    assert_eq!(v_plain, v_opt, "optimization must not change the value");
    assert!(
        size_opt < size_plain,
        "optimized code smaller: {size_opt} < {size_plain}"
    );
    assert!(
        steps_opt < steps_plain,
        "optimized code faster: {steps_opt} < {steps_plain}"
    );
}

#[test]
fn optimizer_preserves_packet_filter_semantics() {
    use mlbox_bpf::packet::PacketGen;
    let filter = telnet_filter();
    let mut plain = FilterHarness::new(&filter).unwrap();
    let mut opt = FilterHarness::with_options(
        &filter,
        mlbox::SessionOptions {
            optimize: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut g = PacketGen::new(99);
    for pkt in g.workload(10, 0.5) {
        let (a, _) = plain.specialized(&pkt).unwrap();
        let (b, _) = opt.specialized(&pkt).unwrap();
        assert_eq!(a, b, "on {:?}", pkt.kind);
    }
}
