//! Multi-stage specialization tests: `code` under `code`, generators
//! spliced across stages, and Fabius-style dynamic staging where the
//! number of specializations depends on run-time values (§4.1).

use mlbox::Session;

#[test]
fn two_literal_stages() {
    let mut s = Session::new().unwrap();
    s.run("val g2 = code (fn a => code (fn b => b * 2))")
        .unwrap();
    s.run("val stage1 = eval g2").unwrap();
    s.run("val gen2 = stage1 7").unwrap();
    let out = s.eval_expr("eval gen2 10").unwrap();
    assert_eq!(out.value, "20");
}

#[test]
fn inner_stage_uses_outer_late_value_via_lift() {
    let mut s = Session::new().unwrap();
    s.run("val g = code (fn a => let cogen a' = lift a in code (fn b => a' * 100 + b) end)")
        .unwrap();
    s.run("val mk = eval g").unwrap();
    s.run("val gen42 = mk 42").unwrap();
    let out = s.eval_expr("eval gen42 7").unwrap();
    assert_eq!(out.value, "4207");
    // Different stage-1 value → different generated code.
    s.run("val gen9 = mk 9").unwrap();
    assert_eq!(s.eval_expr("eval gen9 7").unwrap().value, "907");
}

#[test]
fn three_stages() {
    let mut s = Session::new().unwrap();
    let src = "\
val g3 = code (fn a =>
  let cogen a' = lift a
  in code (fn b =>
       let cogen b' = lift b
       in code (fn c => a' * 100 + b' * 10 + c) end)
  end)";
    s.run(src).unwrap();
    s.run("val s1 = eval g3").unwrap();
    s.run("val s2 = eval (s1 1)").unwrap();
    s.run("val s3 = eval (s2 2)").unwrap();
    assert_eq!(s.eval_expr("s3 3").unwrap().value, "123");
}

#[test]
fn dynamic_number_of_stages() {
    // Fabius-style dynamic staging: how often we re-specialize depends on
    // run-time input (a chain of adders built one stage at a time).
    let mut s = Session::new().unwrap();
    let src = "\
fun addN n =
  if n = 0 then code (fn x => x)
  else
    let cogen rest = addN (n - 1)
        cogen one = lift 1
    in code (fn x => rest (x + one)) end";
    s.run(src).unwrap();
    for n in [0i64, 1, 5, 20] {
        let out = s.eval_expr(&format!("eval (addN {n}) 100")).unwrap();
        assert_eq!(out.value, (100 + n).to_string());
    }
}

#[test]
fn generator_spliced_into_another_generation() {
    // let cogen u = <generator> in code (... u ...): u's code is spliced
    // into the outer generation.
    let mut s = Session::new().unwrap();
    let src = "\
val inc = code (fn x => x + 1)
val usedTwice =
  let cogen f = inc
  in code (fn x => f (f x)) end";
    s.run(src).unwrap();
    assert_eq!(s.eval_expr("eval usedTwice 10").unwrap().value, "12");
}

#[test]
fn two_stage_generator_spliced_into_another_generation() {
    // The hard case for the closure-insertion technique: a generator
    // whose *body contains another code* is spliced into a host
    // generation; the inner stage must still resolve its variables.
    let mut s = Session::new().unwrap();
    let src = "\
val twoStage = code (fn a => let cogen a' = lift a in code (fn b => a' + b) end)
val host =
  let cogen ts = twoStage
  in code (fn n => ts (n * 10)) end
val mk = eval host
val gen2 = mk 5";
    s.run(src).unwrap();
    assert_eq!(s.eval_expr("eval gen2 3").unwrap().value, "53");
}

#[test]
fn multi_stage_emission_happens_at_each_stage() {
    let mut s = Session::new().unwrap();
    s.run("val g2 = code (fn a => code (fn b => b * 2))")
        .unwrap();
    let o1 = s.run("val stage1 = eval g2").unwrap();
    assert!(
        o1.last().unwrap().stats.emitted > 0,
        "stage-1 generation emits"
    );
    let o2 = s.run("val gen2 = stage1 7").unwrap();
    // Applying stage1 runs generated code which *builds* the stage-2
    // generator (a closure), but does not emit stage-2 code yet.
    let o3 = s.run("val f = eval gen2").unwrap();
    assert!(
        o3.last().unwrap().stats.emitted > 0,
        "stage-2 generation emits"
    );
    let _ = o2;
}

#[test]
fn deeply_nested_generators_terminate() {
    let mut s = Session::new().unwrap();
    // 30 stages of lift-and-wrap, invoked iteratively.
    let src = "\
fun tower n =
  if n = 0 then code (fn x => x)
  else
    let cogen rest = tower (n - 1)
    in code (fn x => rest x + 1) end";
    s.run(src).unwrap();
    assert_eq!(s.eval_expr("eval (tower 30) 0").unwrap().value, "30");
}
